//! The mark–sweep heap, organized as segregated per-kind pools.
//!
//! Every object kind gets its own dense pool: a bump-allocated `Vec` of
//! payloads plus a free list, with `u64`-word *alive* and *mark* bitmaps.
//! Pairs — the dominant kind in Scheme workloads — therefore pack as bare
//! `(Value, Value)` tuples with no enum discriminant and no `Option`
//! wrapper, and a mark clear is a `memset` of one `u64` per 64 objects
//! instead of a per-object boolean loop.
//!
//! The kind lives in the top bits of [`ObjRef`] (see
//! [`ObjRef::kind`](crate::ObjRef::kind)), so type predicates never touch
//! heap memory and every accessor is a single bounds-checked index into the
//! right pool.
//!
//! Collection is embedder-driven tri-color, as before: the embedder marks
//! roots ([`Heap::mark_value`]), drains the gray worklist with
//! [`Heap::mark_children`], interleaves continuation-stack marking via
//! [`Heap::pop_kont`], then calls [`Heap::sweep`]. The mark phase performs
//! **no heap allocation**: children are scanned in place by index, and
//! [`Heap::begin_gc`] pre-reserves worklist capacity for every live object.

use std::time::Instant;

use oneshot_core::KontId;

use crate::value::{ObjRef, Value};

pub use crate::value::ObjKind;

/// A heap-allocated object, as passed to [`Heap::alloc`].
///
/// This is the *allocation description*: the heap immediately explodes it
/// into the matching pool, so no `Obj` value is ever stored. Reads go
/// through the typed accessors ([`Heap::pair`], [`Heap::vector`], ...) or
/// the borrowing [`Heap::view`].
#[derive(Debug, Clone, PartialEq)]
pub enum Obj {
    /// A mutable pair.
    Pair(Value, Value),
    /// A mutable vector.
    Vector(Vec<Value>),
    /// A mutable string (characters for O(1) `string-set!`).
    Str(Vec<char>),
    /// A closure: a code-object index owned by the embedding VM plus the
    /// captured free-variable values (flat closure representation).
    Closure {
        /// Index into the VM's code table.
        code: u32,
        /// Captured free-variable values.
        free: Box<[Value]>,
    },
    /// A first-class continuation: the control part lives in the segmented
    /// stack (`oneshot-core`); `winders` snapshots the `dynamic-wind` chain
    /// at capture time.
    Kont {
        /// The sealed stack record, or `None` for the empty ("halt")
        /// continuation captured at an empty top level.
        kont: Option<KontId>,
        /// The winder list captured with it.
        winders: Value,
    },
    /// A boxed (assignment-converted) variable cell.
    Cell(Value),
}

impl Obj {
    /// Approximate size in words, for allocation accounting.
    fn words(&self) -> u64 {
        match self {
            Obj::Pair(..) => 2,
            Obj::Vector(v) => 1 + v.len() as u64,
            Obj::Str(s) => 1 + (s.len() as u64).div_ceil(8),
            Obj::Closure { free, .. } => 2 + free.len() as u64,
            Obj::Kont { .. } => 3,
            Obj::Cell(_) => 1,
        }
    }
}

/// A borrowed read-only view of a heap object, returned by [`Heap::view`].
///
/// Printers, converters and `equal?` traverse arbitrary objects through
/// this; hot VM paths use the typed accessors instead.
#[derive(Debug, Clone, Copy)]
pub enum ObjView<'a> {
    /// A pair's car and cdr.
    Pair(Value, Value),
    /// A vector's elements.
    Vector(&'a [Value]),
    /// A string's characters.
    Str(&'a [char]),
    /// A closure's code index and captured free values.
    Closure {
        /// Index into the VM's code table.
        code: u32,
        /// Captured free-variable values.
        free: &'a [Value],
    },
    /// A continuation's stack record and winder snapshot.
    Kont {
        /// The sealed stack record, or `None` for the halt continuation.
        kont: Option<KontId>,
        /// The winder list captured with it.
        winders: Value,
    },
    /// A cell's contents.
    Cell(Value),
}

/// Inline capacity for closure free-variable payloads. Captures of at
/// most this many values live directly in the pool slot; larger ones
/// fall back to a boxed slice.
const CLOSURE_INLINE: usize = 4;

/// A closure's captured free variables. Small captures (the common case
/// by far) are stored inline so closure allocation performs no Rust-side
/// heap allocation — continuation-heavy workloads allocate one closure
/// per capture, which made the payload box a hot malloc.
#[derive(Debug)]
enum FreeVals {
    /// `len` live values in a fixed slot-resident array.
    Inline(u8, [Value; CLOSURE_INLINE]),
    /// Overflow representation for large captures.
    Boxed(Box<[Value]>),
}

impl Default for FreeVals {
    fn default() -> Self {
        FreeVals::Inline(0, [Value::NIL; CLOSURE_INLINE])
    }
}

impl FreeVals {
    #[inline]
    fn from_slice(free: &[Value]) -> Self {
        if free.len() <= CLOSURE_INLINE {
            let mut a = [Value::NIL; CLOSURE_INLINE];
            a[..free.len()].copy_from_slice(free);
            FreeVals::Inline(free.len() as u8, a)
        } else {
            FreeVals::Boxed(free.into())
        }
    }

    #[inline]
    fn as_slice(&self) -> &[Value] {
        match self {
            FreeVals::Inline(n, a) => &a[..*n as usize],
            FreeVals::Boxed(b) => b,
        }
    }
}

/// A closure payload in the closure pool.
#[derive(Debug, Default)]
struct ClosureObj {
    code: u32,
    free: FreeVals,
}

/// A continuation payload in the kont pool.
#[derive(Debug)]
struct KontObj {
    kont: Option<KontId>,
    winders: Value,
}

impl Default for KontObj {
    fn default() -> Self {
        KontObj { kont: None, winders: Value::NIL }
    }
}

/// Live-object counts per pool — point-in-time gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct PoolOccupancy {
    /// Live pairs.
    pub pairs: u64,
    /// Live vectors.
    pub vectors: u64,
    /// Live strings.
    pub strs: u64,
    /// Live closures.
    pub closures: u64,
    /// Live continuations.
    pub konts: u64,
    /// Live cells.
    pub cells: u64,
}

/// Heap statistics.
///
/// # Counters vs gauges
///
/// Fields are either **monotone counters** (only ever increase; a
/// difference between two snapshots is the volume in between) or **gauges**
/// (point-in-time readings; differencing or summing them is meaningless).
/// [`HeapStats::delta_since`] subtracts the counters and carries the *later*
/// snapshot's gauges through unchanged — consumers aggregating deltas (e.g.
/// `crates/bench/src/metrics.rs`) must only sum the counter fields.
///
/// Counters: `words_allocated`, `objects_allocated`, `collections`,
/// `closures_allocated`, `objects_freed`, `sweep_ns`.
/// Gauges: `last_freed`, `last_sweep_ns`, `live`, `peak_live`, `pools`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct HeapStats {
    /// Words allocated since creation (counter).
    pub words_allocated: u64,
    /// Objects allocated since creation (counter).
    pub objects_allocated: u64,
    /// Collections performed (counter).
    pub collections: u64,
    /// Objects freed by the last sweep (gauge — use
    /// [`objects_freed`](Self::objects_freed) for volumes).
    pub last_freed: u64,
    /// Closures allocated since creation (counter) — drives the §5
    /// closure-creation-overhead comparison with CPS compilation.
    pub closures_allocated: u64,
    /// Objects freed across all sweeps (counter).
    pub objects_freed: u64,
    /// Total nanoseconds spent sweeping (counter).
    pub sweep_ns: u64,
    /// Nanoseconds spent in the last sweep (gauge).
    pub last_sweep_ns: u64,
    /// Live objects right now (gauge).
    pub live: u64,
    /// Most objects ever simultaneously live (gauge, running maximum).
    pub peak_live: u64,
    /// Live objects per pool (gauges).
    pub pools: PoolOccupancy,
}

impl HeapStats {
    /// Counter-wise difference `self - earlier`; gauge fields
    /// (`last_freed`, `last_sweep_ns`, `live`, `peak_live`, `pools`) keep
    /// `self`'s current values — do not sum them across deltas.
    #[must_use]
    pub fn delta_since(&self, earlier: &HeapStats) -> HeapStats {
        HeapStats {
            words_allocated: self.words_allocated - earlier.words_allocated,
            objects_allocated: self.objects_allocated - earlier.objects_allocated,
            collections: self.collections - earlier.collections,
            last_freed: self.last_freed,
            closures_allocated: self.closures_allocated - earlier.closures_allocated,
            objects_freed: self.objects_freed - earlier.objects_freed,
            sweep_ns: self.sweep_ns - earlier.sweep_ns,
            last_sweep_ns: self.last_sweep_ns,
            live: self.live,
            peak_live: self.peak_live,
            pools: self.pools,
        }
    }
}

/// What sweeping must do to a freed slot. Plain-value payloads leave the
/// stale bytes in place (the slot is dead — its alive bit is clear — and
/// [`Pool::alloc`] overwrites the whole slot on reuse); payloads that own
/// Rust-side memory release it here so a sweep, not a later reuse, is
/// what returns memory to the allocator.
trait PoolPayload: Default {
    /// Drops any owned memory in a freed slot. The default is a no-op.
    #[inline]
    fn release(&mut self) {}
}

impl PoolPayload for (Value, Value) {}
impl PoolPayload for Value {}
impl PoolPayload for KontObj {}

impl PoolPayload for Vec<Value> {
    fn release(&mut self) {
        *self = Vec::new();
    }
}

impl PoolPayload for Vec<char> {
    fn release(&mut self) {
        *self = Vec::new();
    }
}

impl PoolPayload for ClosureObj {
    fn release(&mut self) {
        // Inline captures own nothing; only a spilled box must drop.
        if matches!(self.free, FreeVals::Boxed(_)) {
            self.free = FreeVals::default();
        }
    }
}

/// One segregated pool: dense payload slots, a free list, and `u64`-word
/// *alive*/*mark* bitmaps (bit `i` of word `i / 64` covers slot `i`).
#[derive(Debug, Default)]
struct Pool<T> {
    slots: Vec<T>,
    /// Alive bitmap: set at alloc, cleared at sweep. Sweep walks this.
    alive: Vec<u64>,
    /// Mark bitmap: cleared wholesale in `begin_gc`, set during marking.
    marks: Vec<u64>,
    free: Vec<u32>,
    live: usize,
}

impl<T: PoolPayload> Pool<T> {
    /// Stores `v`, reusing a freed slot if one exists.
    fn alloc(&mut self, v: T) -> u32 {
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = v;
                set_bit(&mut self.alive, i);
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("heap pool overflow");
                assert!(i <= crate::value::INDEX_MASK, "heap pool overflow");
                self.slots.push(v);
                if self.slots.len() > self.alive.len() * 64 {
                    self.alive.push(0);
                    self.marks.push(0);
                }
                set_bit(&mut self.alive, i);
                i
            }
        }
    }

    #[inline]
    fn is_live(&self, i: u32) -> bool {
        bit(&self.alive, i)
    }

    /// Marks slot `i`; true if it was not already marked.
    #[inline]
    fn try_mark(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i % 64);
        let hit = self.marks[w] & (1 << b) == 0;
        self.marks[w] |= 1 << b;
        hit
    }

    /// Word-granularity mark clear.
    fn clear_marks(&mut self) {
        self.marks.fill(0);
    }

    /// Frees every alive-but-unmarked slot (releasing any owned payload
    /// memory — see [`PoolPayload::release`]), returning how many were
    /// freed.
    fn sweep(&mut self) -> u64 {
        let mut freed = 0u64;
        for w in 0..self.alive.len() {
            let mut garbage = self.alive[w] & !self.marks[w];
            if garbage == 0 {
                continue;
            }
            self.alive[w] &= self.marks[w];
            while garbage != 0 {
                let i = w as u32 * 64 + garbage.trailing_zeros();
                self.slots[i as usize].release();
                self.free.push(i);
                freed += 1;
                garbage &= garbage - 1;
            }
        }
        self.live -= freed as usize;
        freed
    }
}

#[inline]
fn set_bit(words: &mut [u64], i: u32) {
    words[i as usize / 64] |= 1 << (i % 64);
}

#[inline]
fn bit(words: &[u64], i: u32) -> bool {
    words[i as usize / 64] & (1 << (i % 64)) != 0
}

/// A mark–sweep heap of segregated per-kind object pools.
#[derive(Debug, Default)]
pub struct Heap {
    pairs: Pool<(Value, Value)>,
    vectors: Pool<Vec<Value>>,
    strs: Pool<Vec<char>>,
    closures: Pool<ClosureObj>,
    konts: Pool<KontObj>,
    cells: Pool<Value>,
    /// Pool indices of live `Kont` objects with a stack record — maintained
    /// at alloc/sweep so [`Heap::konts`] never scans the heap.
    kont_registry: Vec<u32>,
    gray: Vec<ObjRef>,
    /// Continuation records discovered during marking, for the embedder to
    /// drain (their stack slices live outside the heap).
    kont_gray: Vec<KontId>,
    stats: HeapStats,
    peak_live: usize,
    alloc_since_gc: usize,
    gc_threshold: usize,
    /// Whether the threshold tracks the live set (the default) or was
    /// pinned by [`Heap::set_gc_threshold`].
    adaptive_threshold: bool,
    /// Injected allocation fault: the `objects_allocated` count at which
    /// the fault fires (see [`Heap::arm_alloc_fault`]). Piggybacking on
    /// the allocation counter keeps the alloc hot paths untouched — the
    /// threshold is only compared at embedder safe points.
    alloc_fault_at: Option<u64>,
}

/// Bounds for the adaptive collection threshold (objects allocated
/// between collections). The floor keeps sweep amortization sane for
/// tiny live sets while the pools stay cache-resident; the ceiling
/// bounds the memory held by a collection cycle.
const ADAPTIVE_THRESHOLD_MIN: usize = 1 << 14;
const ADAPTIVE_THRESHOLD_MAX: usize = 1 << 20;

impl Heap {
    /// Creates an empty heap with the adaptive collection threshold.
    pub fn new() -> Self {
        Heap { gc_threshold: ADAPTIVE_THRESHOLD_MIN, adaptive_threshold: true, ..Heap::default() }
    }

    /// Statistics snapshot (allocation volume, collections, occupancy
    /// gauges). See [`HeapStats`] for the counter/gauge split.
    pub fn stats(&self) -> HeapStats {
        let mut s = self.stats;
        s.live = self.len() as u64;
        s.peak_live = self.peak_live as u64;
        s.pools = PoolOccupancy {
            pairs: self.pairs.live as u64,
            vectors: self.vectors.live as u64,
            strs: self.strs.live as u64,
            closures: self.closures.live as u64,
            konts: self.konts.live as u64,
            cells: self.cells.live as u64,
        };
        s
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.pairs.live
            + self.vectors.live
            + self.strs.live
            + self.closures.live
            + self.konts.live
            + self.cells.live
    }

    /// Whether the heap holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Words allocated since creation (monotone) — the allocation-volume
    /// measure used throughout the paper's evaluation.
    pub fn words_allocated(&self) -> u64 {
        self.stats.words_allocated
    }

    /// Pins the number of allocations after which
    /// [`Heap::wants_collection`] reports true, disabling the adaptive
    /// trigger (experiments sweep fixed thresholds).
    pub fn set_gc_threshold(&mut self, objects: usize) {
        self.gc_threshold = objects.max(16);
        self.adaptive_threshold = false;
    }

    /// Arms the injected allocation fault: the `n`-th subsequent
    /// allocation (1-based) *latches* a fault that the embedder observes
    /// with [`Heap::take_alloc_fault`] at its next safe point. The
    /// allocation itself still succeeds — Scheme semantics require the
    /// failure to surface as a raised condition, not a torn object graph.
    pub fn arm_alloc_fault(&mut self, n: u64) {
        self.alloc_fault_at = Some(self.stats.objects_allocated + n.max(1));
    }

    /// Consumes a latched allocation fault, returning whether one had
    /// fired since the last call. Injected faults fire once per arming.
    pub fn take_alloc_fault(&mut self) -> bool {
        if self.alloc_fault_pending() {
            self.alloc_fault_at = None;
            true
        } else {
            false
        }
    }

    /// Whether a fired allocation fault is latched and waiting for
    /// [`Heap::take_alloc_fault`]. Lets the embedder skip the consuming
    /// check at safe points where fault delivery is deferred.
    #[must_use]
    pub fn alloc_fault_pending(&self) -> bool {
        self.alloc_fault_at.is_some_and(|at| self.stats.objects_allocated >= at)
    }

    /// Allocates `o`, returning its reference. Never collects — the
    /// embedder drives collection (it owns the roots).
    pub fn alloc(&mut self, o: Obj) -> ObjRef {
        self.stats.words_allocated += o.words();
        self.stats.objects_allocated += 1;
        self.alloc_since_gc += 1;
        let r = match o {
            Obj::Pair(a, d) => ObjRef::pack(ObjKind::Pair, self.pairs.alloc((a, d))),
            Obj::Vector(v) => ObjRef::pack(ObjKind::Vector, self.vectors.alloc(v)),
            Obj::Str(s) => ObjRef::pack(ObjKind::Str, self.strs.alloc(s)),
            Obj::Closure { code, free } => {
                self.stats.closures_allocated += 1;
                let free = FreeVals::from_slice(&free);
                ObjRef::pack(ObjKind::Closure, self.closures.alloc(ClosureObj { code, free }))
            }
            Obj::Kont { kont, winders } => {
                let i = self.konts.alloc(KontObj { kont, winders });
                if kont.is_some() {
                    self.kont_registry.push(i);
                }
                ObjRef::pack(ObjKind::Kont, i)
            }
            Obj::Cell(v) => ObjRef::pack(ObjKind::Cell, self.cells.alloc(v)),
        };
        self.peak_live = self.peak_live.max(self.len());
        r
    }

    /// Allocates a closure directly from a borrowed free-variable slice
    /// (the hot path for the VM's `closure` opcode). Captures of at most
    /// [`CLOSURE_INLINE`] values are copied into the pool slot, so this
    /// performs no Rust-side allocation for them.
    #[inline]
    pub fn alloc_closure(&mut self, code: u32, free: &[Value]) -> ObjRef {
        self.stats.words_allocated += 2 + free.len() as u64;
        self.stats.objects_allocated += 1;
        self.stats.closures_allocated += 1;
        self.alloc_since_gc += 1;
        let free = FreeVals::from_slice(free);
        let r = ObjRef::pack(ObjKind::Closure, self.closures.alloc(ClosureObj { code, free }));
        self.peak_live = self.peak_live.max(self.len());
        r
    }

    /// Allocates a pair directly (the hot path for `cons`).
    #[inline]
    pub fn alloc_pair(&mut self, car: Value, cdr: Value) -> ObjRef {
        self.stats.words_allocated += 2;
        self.stats.objects_allocated += 1;
        self.alloc_since_gc += 1;
        let r = ObjRef::pack(ObjKind::Pair, self.pairs.alloc((car, cdr)));
        self.peak_live = self.peak_live.max(self.len());
        r
    }

    /// Whether enough allocation has happened that the embedder should run
    /// a collection at the next safe point.
    pub fn wants_collection(&self) -> bool {
        self.alloc_since_gc >= self.gc_threshold
    }

    // ------------------------------------------------------------------
    // Typed accessors (hot VM paths)
    // ------------------------------------------------------------------

    /// The car and cdr, if `r` is a pair.
    #[inline]
    pub fn pair(&self, r: ObjRef) -> Option<(Value, Value)> {
        (r.kind() == ObjKind::Pair).then(|| {
            debug_assert!(self.pairs.is_live(r.pool_index()), "access to collected pair");
            self.pairs.slots[r.pool_index() as usize]
        })
    }

    /// Mutable car/cdr, if `r` is a pair (`set-car!` / `set-cdr!`).
    #[inline]
    pub fn pair_mut(&mut self, r: ObjRef) -> Option<&mut (Value, Value)> {
        (r.kind() == ObjKind::Pair).then(|| {
            debug_assert!(self.pairs.is_live(r.pool_index()), "access to collected pair");
            &mut self.pairs.slots[r.pool_index() as usize]
        })
    }

    /// The elements, if `r` is a vector.
    #[inline]
    pub fn vector(&self, r: ObjRef) -> Option<&[Value]> {
        (r.kind() == ObjKind::Vector).then(|| {
            debug_assert!(self.vectors.is_live(r.pool_index()), "access to collected vector");
            &self.vectors.slots[r.pool_index() as usize][..]
        })
    }

    /// Mutable elements, if `r` is a vector.
    #[inline]
    pub fn vector_mut(&mut self, r: ObjRef) -> Option<&mut Vec<Value>> {
        (r.kind() == ObjKind::Vector).then(|| {
            debug_assert!(self.vectors.is_live(r.pool_index()), "access to collected vector");
            &mut self.vectors.slots[r.pool_index() as usize]
        })
    }

    /// The characters, if `r` is a string.
    #[inline]
    pub fn string(&self, r: ObjRef) -> Option<&[char]> {
        (r.kind() == ObjKind::Str).then(|| {
            debug_assert!(self.strs.is_live(r.pool_index()), "access to collected string");
            &self.strs.slots[r.pool_index() as usize][..]
        })
    }

    /// Mutable characters, if `r` is a string.
    #[inline]
    pub fn string_mut(&mut self, r: ObjRef) -> Option<&mut Vec<char>> {
        (r.kind() == ObjKind::Str).then(|| {
            debug_assert!(self.strs.is_live(r.pool_index()), "access to collected string");
            &mut self.strs.slots[r.pool_index() as usize]
        })
    }

    /// The code index and free values, if `r` is a closure.
    #[inline]
    pub fn closure(&self, r: ObjRef) -> Option<(u32, &[Value])> {
        (r.kind() == ObjKind::Closure).then(|| {
            debug_assert!(self.closures.is_live(r.pool_index()), "access to collected closure");
            let c = &self.closures.slots[r.pool_index() as usize];
            (c.code, c.free.as_slice())
        })
    }

    /// The stack record and winder snapshot, if `r` is a continuation.
    #[inline]
    pub fn kont(&self, r: ObjRef) -> Option<(Option<KontId>, Value)> {
        (r.kind() == ObjKind::Kont).then(|| {
            debug_assert!(self.konts.is_live(r.pool_index()), "access to collected continuation");
            let k = &self.konts.slots[r.pool_index() as usize];
            (k.kont, k.winders)
        })
    }

    /// The contents, if `r` is a cell.
    #[inline]
    pub fn cell(&self, r: ObjRef) -> Option<Value> {
        (r.kind() == ObjKind::Cell).then(|| {
            debug_assert!(self.cells.is_live(r.pool_index()), "access to collected cell");
            self.cells.slots[r.pool_index() as usize]
        })
    }

    /// Mutable contents, if `r` is a cell (`set!` on a boxed variable).
    #[inline]
    pub fn cell_mut(&mut self, r: ObjRef) -> Option<&mut Value> {
        (r.kind() == ObjKind::Cell).then(|| {
            debug_assert!(self.cells.is_live(r.pool_index()), "access to collected cell");
            &mut self.cells.slots[r.pool_index() as usize]
        })
    }

    /// A borrowed view of any object — the uniform path for printers,
    /// converters and `equal?`.
    pub fn view(&self, r: ObjRef) -> ObjView<'_> {
        let i = r.pool_index() as usize;
        match r.kind() {
            ObjKind::Pair => {
                let (a, d) = self.pairs.slots[i];
                ObjView::Pair(a, d)
            }
            ObjKind::Vector => ObjView::Vector(&self.vectors.slots[i]),
            ObjKind::Str => ObjView::Str(&self.strs.slots[i]),
            ObjKind::Closure => {
                let c = &self.closures.slots[i];
                ObjView::Closure { code: c.code, free: c.free.as_slice() }
            }
            ObjKind::Kont => {
                let k = &self.konts.slots[i];
                ObjView::Kont { kont: k.kont, winders: k.winders }
            }
            ObjKind::Cell => ObjView::Cell(self.cells.slots[i]),
        }
    }

    // ------------------------------------------------------------------
    // Collection (embedder-driven tri-color)
    // ------------------------------------------------------------------

    /// Begins a collection: clears all mark bitmaps (one `u64` write per 64
    /// objects) and the worklists, and pre-reserves worklist capacity for
    /// every live object so the mark phase never allocates.
    pub fn begin_gc(&mut self) {
        self.pairs.clear_marks();
        self.vectors.clear_marks();
        self.strs.clear_marks();
        self.closures.clear_marks();
        self.konts.clear_marks();
        self.cells.clear_marks();
        self.gray.clear();
        self.gray.reserve(self.len());
        self.kont_gray.clear();
        self.kont_gray.reserve(self.konts.live);
    }

    /// Marks a value's object (if any) and queues it for scanning.
    #[inline]
    pub fn mark_value(&mut self, v: Value) {
        // One tag test filters out every immediate; only heap words reach
        // the per-kind bitmaps.
        if let Some(r) = v.as_obj() {
            let i = r.pool_index();
            let hit = match r.kind() {
                ObjKind::Pair => self.pairs.try_mark(i),
                ObjKind::Vector => self.vectors.try_mark(i),
                ObjKind::Str => self.strs.try_mark(i),
                ObjKind::Closure => self.closures.try_mark(i),
                ObjKind::Kont => self.konts.try_mark(i),
                ObjKind::Cell => self.cells.try_mark(i),
            };
            if hit {
                self.gray.push(r);
            }
        }
    }

    /// Pops the next object awaiting a scan of its children.
    pub fn pop_gray(&mut self) -> Option<ObjRef> {
        self.gray.pop()
    }

    /// Pops the next continuation record discovered during marking; the
    /// embedder must mark its stack slice (those values live in the
    /// segmented stack, not the heap).
    pub fn pop_kont(&mut self) -> Option<KontId> {
        self.kont_gray.pop()
    }

    /// Marks every value directly referenced by `r`, in place — no
    /// allocation, no callbacks. Continuations additionally enqueue their
    /// stack record for the embedder (see [`Heap::pop_kont`]).
    pub fn mark_children(&mut self, r: ObjRef) {
        let i = r.pool_index() as usize;
        match r.kind() {
            ObjKind::Pair => {
                let (a, d) = self.pairs.slots[i];
                self.mark_value(a);
                self.mark_value(d);
            }
            ObjKind::Vector => {
                // Index loop: `mark_value` only touches bitmaps and the
                // gray stack, never vector payloads, so re-borrowing per
                // element is sound and copies nothing.
                for j in 0..self.vectors.slots[i].len() {
                    let v = self.vectors.slots[i][j];
                    self.mark_value(v);
                }
            }
            ObjKind::Str => {}
            ObjKind::Closure => {
                for j in 0..self.closures.slots[i].free.as_slice().len() {
                    let v = self.closures.slots[i].free.as_slice()[j];
                    self.mark_value(v);
                }
            }
            ObjKind::Kont => {
                let KontObj { kont, winders } = self.konts.slots[i];
                if let Some(k) = kont {
                    self.kont_gray.push(k);
                }
                self.mark_value(winders);
            }
            ObjKind::Cell => {
                let v = self.cells.slots[i];
                self.mark_value(v);
            }
        }
    }

    /// Frees all unmarked objects (word-wise `alive & !mark`), prunes the
    /// kont registry, and resets the allocation clock.
    pub fn sweep(&mut self) {
        let t0 = Instant::now();
        let mut freed = self.pairs.sweep();
        freed += self.vectors.sweep();
        freed += self.strs.sweep();
        freed += self.closures.sweep();
        let kont_freed = self.konts.sweep();
        freed += kont_freed;
        freed += self.cells.sweep();
        if kont_freed > 0 {
            let konts = &self.konts;
            self.kont_registry.retain(|&i| konts.is_live(i));
        }
        let ns = t0.elapsed().as_nanos() as u64;
        self.stats.collections += 1;
        self.stats.last_freed = freed;
        self.stats.objects_freed += freed;
        self.stats.last_sweep_ns = ns;
        self.stats.sweep_ns += ns;
        self.alloc_since_gc = 0;
        if self.adaptive_threshold {
            // Grow the budget with the surviving set: a large live graph
            // makes each mark expensive (collect rarely), while a small
            // one keeps pools cache-resident at the floor.
            self.gc_threshold =
                (self.len() * 4).clamp(ADAPTIVE_THRESHOLD_MIN, ADAPTIVE_THRESHOLD_MAX);
        }
    }

    /// Iterates over live continuation heap objects — used by embedders to
    /// seed stack-continuation marking. Backed by a registry maintained at
    /// alloc/sweep time, not a heap scan.
    pub fn konts(&self) -> impl Iterator<Item = (ObjRef, KontId)> + '_ {
        self.kont_registry.iter().filter_map(|&i| {
            self.konts.slots[i as usize].kont.map(|k| (ObjRef::pack(ObjKind::Kont, i), k))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the gray worklist, ignoring kont records (none in these
    /// tests reference the stack).
    fn drain(h: &mut Heap) {
        while let Some(r) = h.pop_gray() {
            h.mark_children(r);
        }
    }

    #[test]
    fn alloc_get_mutate() {
        let mut h = Heap::new();
        let r = h.alloc(Obj::Pair(Value::fixnum(1), Value::NIL));
        assert_eq!(h.pair(r), Some((Value::fixnum(1), Value::NIL)));
        h.pair_mut(r).unwrap().0 = Value::fixnum(2);
        assert_eq!(h.pair(r), Some((Value::fixnum(2), Value::NIL)));
        assert_eq!(r.kind(), ObjKind::Pair);
        assert_eq!(h.vector(r), None);
    }

    #[test]
    fn mark_sweep_frees_garbage_keeps_reachable() {
        let mut h = Heap::new();
        let dead = h.alloc(Obj::Pair(Value::fixnum(1), Value::NIL));
        let inner = h.alloc(Obj::Pair(Value::fixnum(2), Value::NIL));
        let root = h.alloc(Obj::Pair(Value::obj(inner), Value::NIL));
        h.begin_gc();
        h.mark_value(Value::obj(root));
        drain(&mut h);
        h.sweep();
        assert_eq!(h.len(), 2);
        assert_eq!(h.pair(inner), Some((Value::fixnum(2), Value::NIL)));
        // The dead pair slot is recycled for the next pair.
        let again = h.alloc(Obj::Pair(Value::NIL, Value::NIL));
        assert_eq!(again, dead);
    }

    #[test]
    fn cycles_are_collected_and_survive_marking() {
        let mut h = Heap::new();
        let a = h.alloc(Obj::Pair(Value::NIL, Value::NIL));
        let b = h.alloc(Obj::Pair(Value::obj(a), Value::NIL));
        h.pair_mut(a).unwrap().1 = Value::obj(b);
        // Marking a cycle terminates.
        h.begin_gc();
        h.mark_value(Value::obj(a));
        drain(&mut h);
        h.sweep();
        assert_eq!(h.len(), 2);
        // Unreachable cycle is collected.
        h.begin_gc();
        h.sweep();
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn words_accounting_grows() {
        let mut h = Heap::new();
        let w0 = h.words_allocated();
        h.alloc(Obj::Vector(vec![Value::NIL; 10]));
        assert_eq!(h.words_allocated(), w0 + 11);
        h.alloc(Obj::Pair(Value::NIL, Value::NIL));
        assert_eq!(h.words_allocated(), w0 + 13);
    }

    #[test]
    fn closure_allocations_are_counted() {
        let mut h = Heap::new();
        assert_eq!(h.stats().closures_allocated, 0);
        h.alloc(Obj::Closure { code: 0, free: Box::new([]) });
        h.alloc(Obj::Pair(Value::NIL, Value::NIL));
        assert_eq!(h.stats().closures_allocated, 1);
    }

    #[test]
    fn wants_collection_after_threshold() {
        let mut h = Heap::new();
        h.set_gc_threshold(16);
        for _ in 0..16 {
            h.alloc(Obj::Cell(Value::NIL));
        }
        assert!(h.wants_collection());
        h.begin_gc();
        h.sweep();
        assert!(!h.wants_collection());
    }

    #[test]
    fn konts_registry_finds_continuations() {
        let mut h = Heap::new();
        h.alloc(Obj::Cell(Value::NIL));
        // Halt konts (no stack record) are not in the registry.
        h.alloc(Obj::Kont { kont: None, winders: Value::NIL });
        let k = h.alloc(Obj::Kont { kont: Some(KontId::from_index(7)), winders: Value::NIL });
        let found: Vec<_> = h.konts().collect();
        assert_eq!(found, vec![(k, KontId::from_index(7))]);
        // Sweeping an unmarked kont prunes the registry.
        h.begin_gc();
        h.sweep();
        assert_eq!(h.konts().count(), 0);
    }

    #[test]
    fn kont_children_enqueue_stack_record() {
        let mut h = Heap::new();
        let w = h.alloc(Obj::Pair(Value::fixnum(1), Value::NIL));
        let k = h.alloc(Obj::Kont { kont: Some(KontId::from_index(3)), winders: Value::obj(w) });
        h.begin_gc();
        h.mark_value(Value::obj(k));
        drain(&mut h);
        assert_eq!(h.pop_kont(), Some(KontId::from_index(3)));
        h.sweep();
        assert_eq!(h.len(), 2, "winders survive through the kont");
    }

    #[test]
    fn typed_refs_are_pool_local() {
        let mut h = Heap::new();
        let p = h.alloc(Obj::Pair(Value::NIL, Value::NIL));
        let c = h.alloc(Obj::Cell(Value::NIL));
        // Same pool index, different kinds — distinct references.
        assert_eq!(p.pool_index(), c.pool_index());
        assert_ne!(p, c);
        assert_eq!(c.kind(), ObjKind::Cell);
        assert_eq!(h.cell(c), Some(Value::NIL));
        assert_eq!(h.cell(p), None);
    }

    #[test]
    fn stats_gauges_track_occupancy_and_peak() {
        let mut h = Heap::new();
        let keep = h.alloc(Obj::Pair(Value::NIL, Value::NIL));
        h.alloc(Obj::Vector(vec![Value::NIL]));
        h.alloc(Obj::Str(vec!['a']));
        let s = h.stats();
        assert_eq!((s.pools.pairs, s.pools.vectors, s.pools.strs), (1, 1, 1));
        assert_eq!(s.live, 3);
        assert_eq!(s.peak_live, 3);
        h.begin_gc();
        h.mark_value(Value::obj(keep));
        drain(&mut h);
        h.sweep();
        let s = h.stats();
        assert_eq!(s.live, 1);
        assert_eq!(s.peak_live, 3, "peak is a running max");
        assert_eq!(s.last_freed, 2);
        assert_eq!(s.objects_freed, 2);
        assert_eq!(s.collections, 1);
    }

    #[test]
    fn alloc_fault_latches_once_at_nth_alloc() {
        let mut h = Heap::new();
        h.arm_alloc_fault(3);
        h.alloc_pair(Value::NIL, Value::NIL);
        h.alloc_pair(Value::NIL, Value::NIL);
        assert!(!h.take_alloc_fault());
        h.alloc_pair(Value::NIL, Value::NIL);
        assert!(h.take_alloc_fault());
        // Consumed: subsequent allocations do not re-trip.
        assert!(!h.take_alloc_fault());
        h.alloc_pair(Value::NIL, Value::NIL);
        assert!(!h.take_alloc_fault());
    }

    #[test]
    fn sweep_resets_freed_payloads() {
        let mut h = Heap::new();
        let v = h.alloc(Obj::Vector(vec![Value::fixnum(9); 100]));
        h.begin_gc();
        h.sweep();
        assert!(h.is_empty());
        // The recycled slot starts empty, not with stale contents.
        let v2 = h.alloc(Obj::Vector(Vec::new()));
        assert_eq!(v2, v);
        assert_eq!(h.vector(v2), Some(&[][..]));
    }
}
