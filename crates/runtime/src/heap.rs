//! The mark–sweep heap.

use oneshot_core::KontId;

use crate::value::{ObjRef, Value};

/// A heap-allocated object.
#[derive(Debug, Clone, PartialEq)]
pub enum Obj {
    /// A mutable pair.
    Pair(Value, Value),
    /// A mutable vector.
    Vector(Vec<Value>),
    /// A mutable string (characters for O(1) `string-set!`).
    Str(Vec<char>),
    /// A closure: a code-object index owned by the embedding VM plus the
    /// captured free-variable values (flat closure representation).
    Closure {
        /// Index into the VM's code table.
        code: u32,
        /// Captured free-variable values.
        free: Box<[Value]>,
    },
    /// A first-class continuation: the control part lives in the segmented
    /// stack (`oneshot-core`); `winders` snapshots the `dynamic-wind` chain
    /// at capture time.
    Kont {
        /// The sealed stack record, or `None` for the empty ("halt")
        /// continuation captured at an empty top level.
        kont: Option<KontId>,
        /// The winder list captured with it.
        winders: Value,
    },
    /// A boxed (assignment-converted) variable cell.
    Cell(Value),
}

impl Obj {
    /// Approximate size in words, for allocation accounting.
    fn words(&self) -> u64 {
        match self {
            Obj::Pair(..) => 2,
            Obj::Vector(v) => 1 + v.len() as u64,
            Obj::Str(s) => 1 + (s.len() as u64).div_ceil(8),
            Obj::Closure { free, .. } => 2 + free.len() as u64,
            Obj::Kont { .. } => 3,
            Obj::Cell(_) => 1,
        }
    }
}

/// Heap statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct HeapStats {
    /// Words allocated since creation (monotone).
    pub words_allocated: u64,
    /// Objects allocated since creation (monotone).
    pub objects_allocated: u64,
    /// Collections performed.
    pub collections: u64,
    /// Objects freed by the last sweep.
    pub last_freed: u64,
    /// Closures allocated since creation (monotone) — drives the §5
    /// closure-creation-overhead comparison with CPS compilation.
    pub closures_allocated: u64,
}

impl HeapStats {
    /// Counter-wise difference `self - earlier` (gauges keep their current
    /// values).
    #[must_use]
    pub fn delta_since(&self, earlier: &HeapStats) -> HeapStats {
        HeapStats {
            words_allocated: self.words_allocated - earlier.words_allocated,
            objects_allocated: self.objects_allocated - earlier.objects_allocated,
            collections: self.collections - earlier.collections,
            last_freed: self.last_freed,
            closures_allocated: self.closures_allocated - earlier.closures_allocated,
        }
    }
}

/// A mark–sweep heap of [`Obj`]s.
#[derive(Debug, Default)]
pub struct Heap {
    slots: Vec<Option<Obj>>,
    marks: Vec<bool>,
    free: Vec<u32>,
    gray: Vec<ObjRef>,
    live: usize,
    stats: HeapStats,
    alloc_since_gc: usize,
    gc_threshold: usize,
}

impl Heap {
    /// Creates an empty heap with the default collection threshold.
    pub fn new() -> Self {
        Heap { gc_threshold: 1 << 16, ..Heap::default() }
    }

    /// Statistics (allocation volume, collections).
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the heap holds no objects.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Words allocated since creation (monotone) — the allocation-volume
    /// measure used throughout the paper's evaluation.
    pub fn words_allocated(&self) -> u64 {
        self.stats.words_allocated
    }

    /// Sets the number of allocations after which
    /// [`Heap::wants_collection`] reports true.
    pub fn set_gc_threshold(&mut self, objects: usize) {
        self.gc_threshold = objects.max(16);
    }

    /// Allocates `o`, returning its reference. Never collects — the
    /// embedder drives collection (it owns the roots).
    pub fn alloc(&mut self, o: Obj) -> ObjRef {
        self.stats.words_allocated += o.words();
        self.stats.objects_allocated += 1;
        if matches!(o, Obj::Closure { .. }) {
            self.stats.closures_allocated += 1;
        }
        self.alloc_since_gc += 1;
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(o);
                self.marks[i as usize] = false;
                ObjRef(i)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("heap index overflow");
                self.slots.push(Some(o));
                self.marks.push(false);
                ObjRef(i)
            }
        }
    }

    /// Whether enough allocation has happened that the embedder should run
    /// a collection at the next safe point.
    pub fn wants_collection(&self) -> bool {
        self.alloc_since_gc >= self.gc_threshold
    }

    /// Reads an object.
    ///
    /// # Panics
    ///
    /// Panics if `r` refers to a collected object (an embedder bug: a root
    /// was not reported during marking).
    #[inline]
    pub fn get(&self, r: ObjRef) -> &Obj {
        self.slots[r.0 as usize].as_ref().expect("access to collected heap object")
    }

    /// Mutates an object (e.g. `set-car!`).
    ///
    /// # Panics
    ///
    /// Panics if `r` refers to a collected object.
    #[inline]
    pub fn get_mut(&mut self, r: ObjRef) -> &mut Obj {
        self.slots[r.0 as usize].as_mut().expect("access to collected heap object")
    }

    // ------------------------------------------------------------------
    // Collection (embedder-driven tri-color)
    // ------------------------------------------------------------------

    /// Begins a collection: clears all marks and the gray worklist.
    pub fn begin_gc(&mut self) {
        for m in &mut self.marks {
            *m = false;
        }
        self.gray.clear();
    }

    /// Marks a value's object (if any) and queues it for scanning.
    #[inline]
    pub fn mark_value(&mut self, v: Value) {
        if let Value::Obj(r) = v {
            if !self.marks[r.0 as usize] {
                self.marks[r.0 as usize] = true;
                self.gray.push(r);
            }
        }
    }

    /// Pops the next object awaiting a scan of its children.
    pub fn pop_gray(&mut self) -> Option<ObjRef> {
        self.gray.pop()
    }

    /// Calls `f` on each value directly referenced by `r`. The embedder is
    /// responsible for continuation objects' stack slices (they live in the
    /// segmented stack, not the heap).
    pub fn with_children(&mut self, r: ObjRef, mut f: impl FnMut(&mut Heap, Value)) {
        // Take the object out to sidestep aliasing; cheap for everything
        // but big vectors, which we handle by index.
        match self.slots[r.0 as usize].as_ref().expect("scan of collected object") {
            Obj::Pair(a, d) => {
                let (a, d) = (*a, *d);
                f(self, a);
                f(self, d);
            }
            Obj::Vector(v) => {
                let n = v.len();
                for i in 0..n {
                    let x = match self.slots[r.0 as usize].as_ref() {
                        Some(Obj::Vector(v)) => v[i],
                        _ => unreachable!(),
                    };
                    f(self, x);
                }
            }
            Obj::Str(_) => {}
            Obj::Closure { free, .. } => {
                let free: Vec<Value> = free.to_vec();
                for x in free {
                    f(self, x);
                }
            }
            Obj::Kont { winders, .. } => {
                let w = *winders;
                f(self, w);
            }
            Obj::Cell(v) => {
                let v = *v;
                f(self, v);
            }
        }
    }

    /// Frees all unmarked objects. Resets the allocation clock.
    pub fn sweep(&mut self) {
        let mut freed = 0;
        for i in 0..self.slots.len() {
            if self.slots[i].is_some() && !self.marks[i] {
                self.slots[i] = None;
                self.free.push(i as u32);
                self.live -= 1;
                freed += 1;
            }
        }
        self.stats.collections += 1;
        self.stats.last_freed = freed;
        self.alloc_since_gc = 0;
    }

    /// Iterates over live continuation heap objects — used by embedders to
    /// seed stack-continuation marking.
    pub fn konts(&self) -> impl Iterator<Item = (ObjRef, KontId)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Some(Obj::Kont { kont: Some(k), .. }) => Some((ObjRef(i as u32), *k)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_mutate() {
        let mut h = Heap::new();
        let r = h.alloc(Obj::Pair(Value::Fixnum(1), Value::Nil));
        assert_eq!(*h.get(r), Obj::Pair(Value::Fixnum(1), Value::Nil));
        if let Obj::Pair(a, _) = h.get_mut(r) {
            *a = Value::Fixnum(2);
        }
        assert_eq!(*h.get(r), Obj::Pair(Value::Fixnum(2), Value::Nil));
    }

    #[test]
    fn mark_sweep_frees_garbage_keeps_reachable() {
        let mut h = Heap::new();
        let dead = h.alloc(Obj::Pair(Value::Fixnum(1), Value::Nil));
        let inner = h.alloc(Obj::Pair(Value::Fixnum(2), Value::Nil));
        let root = h.alloc(Obj::Pair(Value::Obj(inner), Value::Nil));
        h.begin_gc();
        h.mark_value(Value::Obj(root));
        while let Some(r) = h.pop_gray() {
            h.with_children(r, |h, v| h.mark_value(v));
        }
        h.sweep();
        assert_eq!(h.len(), 2);
        assert_eq!(*h.get(inner), Obj::Pair(Value::Fixnum(2), Value::Nil));
        // The dead slot is recycled.
        let again = h.alloc(Obj::Cell(Value::Nil));
        assert_eq!(again, dead);
    }

    #[test]
    fn cycles_are_collected_and_survive_marking() {
        let mut h = Heap::new();
        let a = h.alloc(Obj::Pair(Value::Nil, Value::Nil));
        let b = h.alloc(Obj::Pair(Value::Obj(a), Value::Nil));
        if let Obj::Pair(_, d) = h.get_mut(a) {
            *d = Value::Obj(b);
        }
        // Marking a cycle terminates.
        h.begin_gc();
        h.mark_value(Value::Obj(a));
        while let Some(r) = h.pop_gray() {
            h.with_children(r, |h, v| h.mark_value(v));
        }
        h.sweep();
        assert_eq!(h.len(), 2);
        // Unreachable cycle is collected.
        h.begin_gc();
        h.sweep();
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn words_accounting_grows() {
        let mut h = Heap::new();
        let w0 = h.words_allocated();
        h.alloc(Obj::Vector(vec![Value::Nil; 10]));
        assert_eq!(h.words_allocated(), w0 + 11);
        h.alloc(Obj::Pair(Value::Nil, Value::Nil));
        assert_eq!(h.words_allocated(), w0 + 13);
    }

    #[test]
    fn closure_allocations_are_counted() {
        let mut h = Heap::new();
        assert_eq!(h.stats().closures_allocated, 0);
        h.alloc(Obj::Closure { code: 0, free: Box::new([]) });
        h.alloc(Obj::Pair(Value::Nil, Value::Nil));
        assert_eq!(h.stats().closures_allocated, 1);
    }

    #[test]
    fn wants_collection_after_threshold() {
        let mut h = Heap::new();
        h.set_gc_threshold(16);
        for _ in 0..16 {
            h.alloc(Obj::Cell(Value::Nil));
        }
        assert!(h.wants_collection());
        h.begin_gc();
        h.sweep();
        assert!(!h.wants_collection());
    }

    #[test]
    fn konts_iterator_finds_continuations() {
        let mut h = Heap::new();
        h.alloc(Obj::Cell(Value::Nil));
        let k = h.alloc(Obj::Kont { kont: Some(KontId::from_index(7)), winders: Value::Nil });
        let found: Vec<_> = h.konts().collect();
        assert_eq!(found, vec![(k, KontId::from_index(7))]);
    }
}
