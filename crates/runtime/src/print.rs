//! Value printing (`write` and `display`).

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::heap::{Heap, ObjView};
use crate::symbols::Symbols;
use crate::value::{ObjRef, Unpacked, Value};

/// Formats `v` with `write` conventions (strings quoted, chars as `#\x`).
pub fn write_value(heap: &Heap, syms: &Symbols, v: Value) -> String {
    let mut out = String::new();
    let mut seen = HashSet::new();
    emit(heap, syms, v, true, &mut out, &mut seen, 0);
    out
}

/// Formats `v` with `display` conventions (strings and chars as contents).
pub fn display_value(heap: &Heap, syms: &Symbols, v: Value) -> String {
    let mut out = String::new();
    let mut seen = HashSet::new();
    emit(heap, syms, v, false, &mut out, &mut seen, 0);
    out
}

const MAX_DEPTH: usize = 512;

fn emit(
    heap: &Heap,
    syms: &Symbols,
    v: Value,
    write: bool,
    out: &mut String,
    seen: &mut HashSet<ObjRef>,
    depth: usize,
) {
    if depth > MAX_DEPTH {
        out.push_str("...");
        return;
    }
    match v.unpack() {
        Unpacked::Fixnum(n) => {
            let _ = write!(out, "{n}");
        }
        Unpacked::Flonum(x) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Unpacked::Bool(true) => out.push_str("#t"),
        Unpacked::Bool(false) => out.push_str("#f"),
        Unpacked::Char(c) if write => match c {
            ' ' => out.push_str("#\\space"),
            '\n' => out.push_str("#\\newline"),
            '\t' => out.push_str("#\\tab"),
            c => {
                let _ = write!(out, "#\\{c}");
            }
        },
        Unpacked::Char(c) => out.push(c),
        Unpacked::Nil => out.push_str("()"),
        Unpacked::Eof => out.push_str("#<eof>"),
        Unpacked::Unspecified => out.push_str("#<void>"),
        Unpacked::Undefined => out.push_str("#<undefined>"),
        Unpacked::Sym(s) => out.push_str(syms.name(s)),
        Unpacked::Builtin(i) => {
            let _ = write!(out, "#<builtin {i}>");
        }
        Unpacked::Obj(r) => {
            if !seen.insert(r) {
                out.push_str("#<cycle>");
                return;
            }
            match heap.view(r) {
                ObjView::Pair(car, cdr) => {
                    out.push('(');
                    emit(heap, syms, car, write, out, seen, depth + 1);
                    let mut cur = cdr;
                    loop {
                        match cur {
                            c if c == Value::NIL => break,
                            c if c.is_obj() => {
                                let r2 = c.as_obj().expect("just checked");
                                if seen.contains(&r2) {
                                    out.push_str(" . #<cycle>");
                                    break;
                                }
                                if let ObjView::Pair(a, d) = heap.view(r2) {
                                    seen.insert(r2);
                                    out.push(' ');
                                    emit(heap, syms, a, write, out, seen, depth + 1);
                                    cur = d;
                                } else {
                                    out.push_str(" . ");
                                    emit(heap, syms, cur, write, out, seen, depth + 1);
                                    break;
                                }
                            }
                            other => {
                                out.push_str(" . ");
                                emit(heap, syms, other, write, out, seen, depth + 1);
                                break;
                            }
                        }
                    }
                    out.push(')');
                }
                ObjView::Vector(items) => {
                    out.push_str("#(");
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        emit(heap, syms, *item, write, out, seen, depth + 1);
                    }
                    out.push(')');
                }
                ObjView::Str(s) => {
                    if write {
                        out.push('"');
                        for &c in s {
                            match c {
                                '"' => out.push_str("\\\""),
                                '\\' => out.push_str("\\\\"),
                                '\n' => out.push_str("\\n"),
                                '\t' => out.push_str("\\t"),
                                c => out.push(c),
                            }
                        }
                        out.push('"');
                    } else {
                        out.extend(s.iter());
                    }
                }
                ObjView::Closure { code, .. } => {
                    let _ = write!(out, "#<procedure @{code}>");
                }
                ObjView::Kont { kont, .. } => match kont {
                    Some(k) => {
                        let _ = write!(out, "#<continuation {}>", k.index());
                    }
                    None => out.push_str("#<continuation halt>"),
                },
                ObjView::Cell(inner) => {
                    out.push_str("#<box ");
                    emit(heap, syms, inner, write, out, seen, depth + 1);
                    out.push('>');
                }
            }
            seen.remove(&r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Obj;

    fn list(heap: &mut Heap, items: &[Value]) -> Value {
        let mut v = Value::NIL;
        for &item in items.iter().rev() {
            let r = heap.alloc(Obj::Pair(item, v));
            v = Value::obj(r);
        }
        v
    }

    #[test]
    fn prints_lists() {
        let mut h = Heap::new();
        let s = Symbols::new();
        let l = list(&mut h, &[Value::fixnum(1), Value::fixnum(2)]);
        assert_eq!(write_value(&h, &s, l), "(1 2)");
    }

    #[test]
    fn prints_dotted_pairs_and_vectors() {
        let mut h = Heap::new();
        let s = Symbols::new();
        let p = h.alloc(Obj::Pair(Value::fixnum(1), Value::fixnum(2)));
        assert_eq!(write_value(&h, &s, Value::obj(p)), "(1 . 2)");
        let v = h.alloc(Obj::Vector(vec![Value::TRUE, Value::NIL]));
        assert_eq!(write_value(&h, &s, Value::obj(v)), "#(#t ())");
    }

    #[test]
    fn write_vs_display_strings() {
        let mut h = Heap::new();
        let s = Symbols::new();
        let r = h.alloc(Obj::Str("a\"b".chars().collect()));
        assert_eq!(write_value(&h, &s, Value::obj(r)), "\"a\\\"b\"");
        assert_eq!(display_value(&h, &s, Value::obj(r)), "a\"b");
    }

    #[test]
    fn cycles_are_detected() {
        let mut h = Heap::new();
        let s = Symbols::new();
        let a = h.alloc(Obj::Pair(Value::fixnum(1), Value::NIL));
        h.pair_mut(a).unwrap().1 = Value::obj(a);
        let text = write_value(&h, &s, Value::obj(a));
        assert!(text.contains("#<cycle>"), "{text}");
    }

    #[test]
    fn symbols_print_their_names() {
        let h = Heap::new();
        let mut s = Symbols::new();
        let id = s.intern("lambda");
        assert_eq!(write_value(&h, &s, Value::sym(id)), "lambda");
    }
}
