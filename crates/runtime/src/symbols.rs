//! Symbol interning.

use std::collections::HashMap;

/// An interned symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(u32);

impl SymbolId {
    /// The raw table index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from a raw index (value-word decoding only; the
    /// index must have come from [`SymbolId::index`]).
    pub(crate) fn from_raw(index: u32) -> SymbolId {
        SymbolId(index)
    }
}

/// The symbol table: bijective map between names and [`SymbolId`]s.
#[derive(Debug, Default)]
pub struct Symbols {
    names: Vec<String>,
    ids: HashMap<String, SymbolId>,
    gensym_counter: u64,
}

impl Symbols {
    /// Creates an empty table.
    pub fn new() -> Self {
        Symbols::default()
    }

    /// Interns `name`, returning its stable identifier.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = SymbolId(u32::try_from(self.names.len()).expect("symbol table overflow"));
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// The name of an interned symbol.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Generates a fresh uninterned-looking symbol with the given prefix
    /// (actually interned under a name no reader token can produce).
    pub fn gensym(&mut self, prefix: &str) -> SymbolId {
        self.gensym_counter += 1;
        let name = format!("{prefix}%{}", self.gensym_counter);
        self.intern(&name)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = Symbols::new();
        let a = t.intern("foo");
        let b = t.intern("foo");
        let c = t.intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.name(a), "foo");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn gensyms_are_distinct() {
        let mut t = Symbols::new();
        let g1 = t.gensym("t");
        let g2 = t.gensym("t");
        assert_ne!(g1, g2);
        assert_ne!(t.name(g1), t.name(g2));
    }
}
