//! Reader data → runtime values.

use oneshot_sexp::Datum;

use crate::heap::{Heap, Obj, ObjView};
use crate::symbols::Symbols;
use crate::value::{Unpacked, Value};

/// Converts a reader [`Datum`] into a heap [`Value`] (used for `quote`d
/// constants and program input).
///
/// Iterates along cdr spines so arbitrarily long list literals convert
/// without native-stack recursion; recursion depth is bounded by nesting.
pub fn datum_to_value(heap: &mut Heap, syms: &mut Symbols, d: &Datum) -> Value {
    match d {
        Datum::Bool(b) => Value::boolean(*b),
        // An integer literal outside the 50-bit fixnum range becomes an
        // inexact flonum — the reader's i64 range exceeds the word's; there
        // is no bignum layer to fall back to, and a literal should not
        // raise. Arithmetic overflow, by contrast, raises a condition.
        Datum::Fixnum(n) => Value::fixnum_checked(*n).unwrap_or_else(|| Value::flonum(*n as f64)),
        Datum::Flonum(x) => Value::flonum(*x),
        Datum::Char(c) => Value::character(*c),
        Datum::Str(s) => Value::obj(heap.alloc(Obj::Str(s.chars().collect()))),
        Datum::Symbol(s) => Value::sym(syms.intern(s)),
        Datum::Nil => Value::NIL,
        Datum::Pair(_) => {
            let mut cars = Vec::new();
            let mut cur = d;
            while let Datum::Pair(p) = cur {
                cars.push(datum_to_value(heap, syms, &p.0));
                cur = &p.1;
            }
            let mut out = datum_to_value(heap, syms, cur);
            for car in cars.into_iter().rev() {
                out = Value::obj(heap.alloc(Obj::Pair(car, out)));
            }
            out
        }
        Datum::Vector(items) => {
            let vals: Vec<Value> = items.iter().map(|x| datum_to_value(heap, syms, x)).collect();
            Value::obj(heap.alloc(Obj::Vector(vals)))
        }
    }
}

/// Converts a runtime value back into reader data (used by `eval`).
///
/// Iterates along cdr spines (lists of any length convert); the depth
/// bound applies to *nesting* only and catches cyclic structures.
///
/// # Errors
///
/// Returns a message for values with no external representation
/// (procedures, continuations, cells) and for structures nested deeper
/// than an `eval`-reasonable bound (which also catches cycles).
pub fn value_to_datum(
    heap: &Heap,
    syms: &crate::symbols::Symbols,
    v: Value,
) -> Result<Datum, String> {
    fn go(
        heap: &Heap,
        syms: &crate::symbols::Symbols,
        v: Value,
        depth: usize,
    ) -> Result<Datum, String> {
        if depth > 512 {
            return Err("eval: datum nested too deeply (cyclic?)".to_string());
        }
        match v.unpack() {
            Unpacked::Bool(b) => Ok(Datum::Bool(b)),
            Unpacked::Fixnum(n) => Ok(Datum::Fixnum(n)),
            Unpacked::Flonum(x) => Ok(Datum::Flonum(x)),
            Unpacked::Char(c) => Ok(Datum::Char(c)),
            Unpacked::Nil => Ok(Datum::Nil),
            Unpacked::Sym(s) => Ok(Datum::Symbol(syms.name(s).to_string())),
            Unpacked::Obj(r) => match heap.view(r) {
                ObjView::Pair(..) => {
                    // Walk the cdr spine iteratively; cycles along the
                    // spine are caught by a step limit.
                    let mut cars = Vec::new();
                    let mut cur = v;
                    let mut steps = 0u32;
                    while let Some(r2) = cur.as_obj() {
                        let Some((a, d)) = heap.pair(r2) else { break };
                        steps += 1;
                        if steps > 10_000_000 {
                            return Err("eval: datum too long (cyclic?)".to_string());
                        }
                        cars.push(go(heap, syms, a, depth + 1)?);
                        cur = d;
                    }
                    let mut out = go(heap, syms, cur, depth + 1)?;
                    for car in cars.into_iter().rev() {
                        out = Datum::cons(car, out);
                    }
                    Ok(out)
                }
                ObjView::Vector(items) => Ok(Datum::Vector(
                    items
                        .iter()
                        .map(|x| go(heap, syms, *x, depth + 1))
                        .collect::<Result<_, _>>()?,
                )),
                ObjView::Str(s) => Ok(Datum::Str(s.iter().collect())),
                _ => Err("eval: value has no external representation".to_string()),
            },
            _ => Err("eval: value has no external representation".to_string()),
        }
    }
    go(heap, syms, v, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::write_value;
    use oneshot_sexp::read_str;

    #[test]
    fn conversion_round_trips_through_printer() {
        let mut h = Heap::new();
        let mut s = Symbols::new();
        for src in ["(1 2 3)", "(a . b)", "#(1 #t \"hi\")", "()", "(1 (2 (3)))"] {
            let d = read_str(src).unwrap();
            let v = datum_to_value(&mut h, &mut s, &d);
            assert_eq!(write_value(&h, &s, v), *src);
        }
    }

    #[test]
    fn value_datum_round_trip() {
        let mut h = Heap::new();
        let mut s = Symbols::new();
        for src in ["(1 2 3)", "(a . b)", "#(1 #t \"hi\")", "()"] {
            let d = read_str(src).unwrap();
            let v = datum_to_value(&mut h, &mut s, &d);
            let back = value_to_datum(&h, &s, v).unwrap();
            assert_eq!(back, d, "{src}");
        }
    }

    #[test]
    fn value_to_datum_rejects_procedures_and_cycles() {
        let mut h = Heap::new();
        let s = Symbols::new();
        let f = h.alloc(Obj::Closure { code: 0, free: Box::new([]) });
        assert!(value_to_datum(&h, &s, Value::obj(f)).is_err());
        let a = h.alloc(Obj::Pair(Value::NIL, Value::NIL));
        h.pair_mut(a).unwrap().1 = Value::obj(a);
        assert!(value_to_datum(&h, &s, Value::obj(a)).is_err());
    }

    #[test]
    fn symbols_are_interned_once() {
        let mut h = Heap::new();
        let mut s = Symbols::new();
        let d = read_str("(x x)").unwrap();
        let v = datum_to_value(&mut h, &mut s, &d);
        let Some(r) = v.as_obj() else { panic!() };
        let (a, d2) = h.pair(r).unwrap();
        let Some(r2) = d2.as_obj() else { panic!() };
        let (b, _) = h.pair(r2).unwrap();
        assert_eq!(a, b, "same symbol id");
    }
}
