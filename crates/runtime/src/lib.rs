//! Value representation, heap, and garbage collector for the oneshot
//! Scheme system.
//!
//! Values are one-word tagged [`Value`]s; compound data lives in a
//! mark–sweep [`Heap`] organized as segregated per-kind pools, indexed by
//! kind-tagged [`ObjRef`]s. Symbols are interned in a [`Symbols`] table.
//! The collector is embedder-driven: the VM owns both the heap and the
//! segmented control stack (`oneshot-core`), and marking must traverse
//! both (continuation objects reference stack segments whose slots hold
//! values, and vice versa), so the heap exposes a tri-color worklist API
//! ([`Heap::mark_value`], [`Heap::pop_gray`], [`Heap::mark_children`],
//! [`Heap::pop_kont`]) instead of a monolithic `collect`.
//!
//! Allocation volume is accounted in words ([`Heap::words_allocated`]) —
//! the measure behind the paper's "allocates 23% less memory" comparison.
//!
//! # Example
//!
//! ```
//! use oneshot_runtime::{Heap, Obj, Symbols, Value};
//!
//! let mut heap = Heap::new();
//! let mut syms = Symbols::new();
//! let x = syms.intern("x");
//! let pair = heap.alloc(Obj::Pair(Value::sym(x), Value::fixnum(1)));
//! assert_eq!(oneshot_runtime::write_value(&heap, &syms, Value::obj(pair)), "(x . 1)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod heap;
mod print;
mod symbols;
mod value;

pub use convert::{datum_to_value, value_to_datum};
pub use heap::{Heap, HeapStats, Obj, ObjView, PoolOccupancy};
pub use print::{display_value, write_value};
pub use symbols::{SymbolId, Symbols};
pub use value::{ObjKind, ObjRef, Unpacked, Value, FIXNUM_MAX, FIXNUM_MIN};

/// Structural (`equal?`) comparison of two values.
///
/// `eqv?`-style identity comparison is [`Value`]'s `PartialEq`. Uses an
/// explicit worklist rather than recursion, so comparing arbitrarily long
/// lists cannot overflow the native stack. Cyclic structures that are not
/// identical diverge (as in R4RS `equal?`) — but identical cycle nodes
/// short-circuit through the `a == b` fast path.
pub fn values_equal(heap: &Heap, a: Value, b: Value) -> bool {
    let mut work = vec![(a, b)];
    while let Some((a, b)) = work.pop() {
        if a == b {
            continue;
        }
        let (Some(ra), Some(rb)) = (a.as_obj(), b.as_obj()) else { return false };
        match (heap.view(ra), heap.view(rb)) {
            (ObjView::Pair(a1, d1), ObjView::Pair(a2, d2)) => {
                work.push((d1, d2));
                work.push((a1, a2));
            }
            (ObjView::Vector(v1), ObjView::Vector(v2)) => {
                if v1.len() != v2.len() {
                    return false;
                }
                work.extend(v1.iter().copied().zip(v2.iter().copied()));
            }
            (ObjView::Str(s1), ObjView::Str(s2)) => {
                if s1 != s2 {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_compares_structure() {
        let mut heap = Heap::new();
        let a = heap.alloc(Obj::Pair(Value::fixnum(1), Value::NIL));
        let b = heap.alloc(Obj::Pair(Value::fixnum(1), Value::NIL));
        assert_ne!(Value::obj(a), Value::obj(b), "eqv? distinguishes allocations");
        assert!(values_equal(&heap, Value::obj(a), Value::obj(b)));
        let c = heap.alloc(Obj::Pair(Value::fixnum(2), Value::NIL));
        assert!(!values_equal(&heap, Value::obj(a), Value::obj(c)));
    }

    #[test]
    fn equal_compares_vectors_and_strings() {
        let mut heap = Heap::new();
        let v1 = heap.alloc(Obj::Vector(vec![Value::fixnum(1), Value::TRUE]));
        let v2 = heap.alloc(Obj::Vector(vec![Value::fixnum(1), Value::TRUE]));
        assert!(values_equal(&heap, Value::obj(v1), Value::obj(v2)));
        let s1 = heap.alloc(Obj::Str("abc".chars().collect()));
        let s2 = heap.alloc(Obj::Str("abc".chars().collect()));
        let s3 = heap.alloc(Obj::Str("abd".chars().collect()));
        assert!(values_equal(&heap, Value::obj(s1), Value::obj(s2)));
        assert!(!values_equal(&heap, Value::obj(s1), Value::obj(s3)));
    }
}
