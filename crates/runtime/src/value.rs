//! The tagged value word.

use crate::symbols::SymbolId;

/// The kind of a heap object, encoded in the top bits of every [`ObjRef`]
/// so type predicates (`pair?`, `procedure?`, ...) never touch heap memory.
///
/// The discriminants select the heap's segregated pools; `Pair` is zero so
/// the dominant object kind gets the cheapest possible check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ObjKind {
    /// A mutable pair.
    Pair = 0,
    /// A mutable vector.
    Vector = 1,
    /// A mutable string.
    Str = 2,
    /// A closure.
    Closure = 3,
    /// A first-class continuation.
    Kont = 4,
    /// A boxed (assignment-converted) variable cell.
    Cell = 5,
}

/// Number of low bits holding the pool index; the remaining high bits hold
/// the [`ObjKind`] tag.
pub(crate) const INDEX_BITS: u32 = 29;
pub(crate) const INDEX_MASK: u32 = (1 << INDEX_BITS) - 1;

/// A reference to a heap object: an [`ObjKind`] tag in the top 3 bits and
/// an index into that kind's pool in the low 29.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(pub(crate) u32);

impl ObjRef {
    /// Packs a kind tag and pool index (heap-internal).
    #[inline]
    pub(crate) fn pack(kind: ObjKind, index: u32) -> Self {
        debug_assert!(index <= INDEX_MASK, "pool index overflow");
        ObjRef((kind as u32) << INDEX_BITS | index)
    }

    /// The object's kind, read from the tag — no heap access.
    #[inline]
    pub fn kind(self) -> ObjKind {
        match self.0 >> INDEX_BITS {
            0 => ObjKind::Pair,
            1 => ObjKind::Vector,
            2 => ObjKind::Str,
            3 => ObjKind::Closure,
            4 => ObjKind::Kont,
            _ => ObjKind::Cell,
        }
    }

    /// The index into the kind's pool (heap-internal).
    #[inline]
    pub(crate) fn pool_index(self) -> u32 {
        self.0 & INDEX_MASK
    }

    /// The raw tagged word — an opaque identity, stable for the object's
    /// lifetime and only comparable against other `index()` results.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A Scheme value: immediates inline, compound data via [`ObjRef`].
///
/// `PartialEq` implements `eqv?` semantics: immediates compare by value,
/// heap objects by identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An exact integer.
    Fixnum(i64),
    /// An inexact real.
    Flonum(f64),
    /// `#t` / `#f`.
    Bool(bool),
    /// A character.
    Char(char),
    /// The empty list.
    Nil,
    /// The end-of-file object.
    Eof,
    /// The unspecified value (result of `set!`, `for-each`, ...).
    Unspecified,
    /// The unbound-global sentinel. Never produced by evaluation: the VM
    /// initializes global cells to `Undefined` so `GlobalRef`'s
    /// bound-check is a single load + compare instead of a second table
    /// lookup. Unreachable from Scheme code.
    Undefined,
    /// An interned symbol.
    Sym(SymbolId),
    /// A builtin procedure, by index into the embedder's builtin table.
    Builtin(u16),
    /// A heap object.
    Obj(ObjRef),
}

impl Value {
    /// Scheme truthiness: everything but `#f` is true.
    #[inline]
    pub fn is_true(self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// The fixnum payload, if this is one.
    pub fn as_fixnum(self) -> Option<i64> {
        match self {
            Value::Fixnum(n) => Some(n),
            _ => None,
        }
    }

    /// The heap reference, if this is a heap object.
    pub fn as_obj(self) -> Option<ObjRef> {
        match self {
            Value::Obj(r) => Some(r),
            _ => None,
        }
    }
}

impl Default for Value {
    /// The unspecified value.
    fn default() -> Self {
        Value::Unspecified
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Fixnum(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<char> for Value {
    fn from(c: char) -> Self {
        Value::Char(c)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Flonum(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Bool(false).is_true());
        assert!(Value::Bool(true).is_true());
        assert!(Value::Fixnum(0).is_true());
        assert!(Value::Nil.is_true());
        assert!(Value::Unspecified.is_true());
    }

    #[test]
    fn eqv_semantics() {
        assert_eq!(Value::Fixnum(3), Value::from(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from('c'), Value::Char('c'));
        assert_eq!(Value::from(1.5), Value::Flonum(1.5));
        assert_ne!(Value::Obj(ObjRef(0)), Value::Obj(ObjRef(1)));
        assert_eq!(Value::default(), Value::Unspecified);
    }

    #[test]
    fn value_is_small() {
        assert!(std::mem::size_of::<Value>() <= 16, "values stay word-pair sized");
    }
}
