//! The NaN-boxed value word.
//!
//! Every Scheme value is one 64-bit word. Untagged words are flonums (the
//! raw IEEE 754 bits of an `f64`); tagged words live in the negative
//! quiet-NaN space, which no canonical flonum ever occupies. See
//! DESIGN.md § "Value representation" for the full scheme and its safety
//! contract.
//!
//! Bit layout (`w` is the word, bit 63 = most significant):
//!
//! ```text
//!  63            50 49  48 47                                0
//! ┌────────────────┬──────┬──────────────────────────────────┐
//! │ 1111111111111 1│  n n n n n n ... fixnum payload (i50)   │ fixnum
//! │ 1111111111111 0│ 0  0 │ ObjRef (kind«3» | pool index)    │ heap object
//! │ 1111111111111 0│ 0  1 │ SymbolId                         │ symbol
//! │ 1111111111111 0│ 1  0 │ builtin index (u16)              │ builtin
//! │ 1111111111111 0│ 1  1 │0 char scalar (21 bits)           │ character
//! │ 1111111111111 0│ 1  1 │1 singleton id (#f #t () eof ...) │ singletons
//! │ anything else: the raw bits of an f64                    │ flonum
//! └────────────────┴──────┴──────────────────────────────────┘
//! ```
//!
//! A word is *tagged* iff its top 13 bits (sign, exponent, quiet bit) are
//! all ones — i.e. it is a negative quiet NaN. [`Value::flonum`]
//! canonicalizes every NaN to the positive quiet NaN
//! `0x7FF8_0000_0000_0000` on encode, so no hardware-produced NaN bit
//! pattern can ever alias a tag.
//!
//! Fixnums occupy the entire bit-50-set half of the tagged space: 50
//! payload bits, sign-extended on decode, giving the range
//! `-2^49 ..= 2^49 - 1`. Arithmetic that leaves this range raises the
//! catchable `fixnum overflow` condition (the "bignum or error" decision:
//! error — there is no bignum layer).
//!
//! `PartialEq` (derived, bitwise) implements `eqv?`: immediates compare by
//! value, heap objects by identity, flonums by bits. With canonicalized
//! NaNs this makes `(eqv? +nan.0 +nan.0)` ⇒ `#t` and
//! `(eqv? 0.0 -0.0)` ⇒ `#f`, both permitted by R7RS (numeric `=` still
//! compares as `f64`, so `(= +nan.0 +nan.0)` stays `#f`).

use crate::symbols::SymbolId;

/// The kind of a heap object, encoded in the top bits of every [`ObjRef`]
/// so type predicates (`pair?`, `procedure?`, ...) never touch heap memory.
///
/// The discriminants select the heap's segregated pools; `Pair` is zero so
/// the dominant object kind gets the cheapest possible check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ObjKind {
    /// A mutable pair.
    Pair = 0,
    /// A mutable vector.
    Vector = 1,
    /// A mutable string.
    Str = 2,
    /// A closure.
    Closure = 3,
    /// A first-class continuation.
    Kont = 4,
    /// A boxed (assignment-converted) variable cell.
    Cell = 5,
}

/// Number of low bits holding the pool index; the remaining high bits hold
/// the [`ObjKind`] tag.
pub(crate) const INDEX_BITS: u32 = 29;
pub(crate) const INDEX_MASK: u32 = (1 << INDEX_BITS) - 1;

/// A reference to a heap object: an [`ObjKind`] tag in the top 3 bits and
/// an index into that kind's pool in the low 29.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(pub(crate) u32);

impl ObjRef {
    /// Packs a kind tag and pool index (heap-internal).
    #[inline]
    pub(crate) fn pack(kind: ObjKind, index: u32) -> Self {
        debug_assert!(index <= INDEX_MASK, "pool index overflow");
        ObjRef((kind as u32) << INDEX_BITS | index)
    }

    /// The object's kind, read from the tag — no heap access.
    #[inline]
    pub fn kind(self) -> ObjKind {
        match self.0 >> INDEX_BITS {
            0 => ObjKind::Pair,
            1 => ObjKind::Vector,
            2 => ObjKind::Str,
            3 => ObjKind::Closure,
            4 => ObjKind::Kont,
            _ => ObjKind::Cell,
        }
    }

    /// The index into the kind's pool (heap-internal).
    #[inline]
    pub(crate) fn pool_index(self) -> u32 {
        self.0 & INDEX_MASK
    }

    /// The raw tagged word — an opaque identity, stable for the object's
    /// lifetime and only comparable against other `index()` results.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A word is tagged iff these 13 bits (sign + exponent + quiet bit) are
/// all set; otherwise it is flonum bits.
const TAGGED: u64 = 0xFFF8_0000_0000_0000;
/// Tagged with bit 50 also set: a fixnum. The whole upper half of the
/// tagged space belongs to fixnums so the fixnum test is one mask+compare.
const FIXNUM: u64 = 0xFFFC_0000_0000_0000;
/// Non-fixnum tag field (bits 49..48), as the word's top 16 bits.
const TAG_OBJ: u64 = 0xFFF8;
const TAG_SYM: u64 = 0xFFF9;
const TAG_BUILTIN: u64 = 0xFFFA;
const TAG_MISC: u64 = 0xFFFB;
/// Inside `TAG_MISC`: bit 47 clear = character scalar, set = singleton.
const MISC_SINGLETON: u64 = 1 << 47;
/// Every NaN is canonicalized to this (positive quiet) pattern on encode.
const CANONICAL_NAN: u64 = 0x7FF8_0000_0000_0000;
/// Fixnum payload width and range.
const FIXNUM_BITS: u32 = 50;
const FIXNUM_PAYLOAD: u64 = (1 << FIXNUM_BITS) - 1;
/// Smallest and largest representable fixnums (`i50`).
pub const FIXNUM_MIN: i64 = -(1 << (FIXNUM_BITS - 1));
/// Largest representable fixnum.
pub const FIXNUM_MAX: i64 = (1 << (FIXNUM_BITS - 1)) - 1;

const fn singleton(id: u64) -> u64 {
    (TAG_MISC << 48) | MISC_SINGLETON | id
}

/// A Scheme value: one 64-bit NaN-boxed word. Immediates (fixnums,
/// flonums, booleans, characters, singletons, symbols, builtins) are
/// stored inline; compound data is an [`ObjRef`] into the heap's
/// segregated pools.
///
/// `PartialEq` implements `eqv?` semantics: immediates compare by value,
/// heap objects by identity (see the module docs for the flonum corner
/// cases). Construct with the typed constructors ([`Value::fixnum`],
/// [`Value::flonum`], ...) and inspect with the predicates/accessors or
/// [`Value::unpack`] — the raw word is private and no tag bits escape
/// this module.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value(u64);

/// A [`Value`] exploded into a Rust enum, for exhaustive matching.
///
/// This is the *view* type: `v.unpack()` is the only way to branch over
/// every class at once, and it compiles to a couple of shifts. Hot paths
/// that only care about one class should use the direct predicates and
/// accessors instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Unpacked {
    /// An exact integer.
    Fixnum(i64),
    /// An inexact real.
    Flonum(f64),
    /// `#t` / `#f`.
    Bool(bool),
    /// A character.
    Char(char),
    /// The empty list.
    Nil,
    /// The end-of-file object.
    Eof,
    /// The unspecified value (result of `set!`, `for-each`, ...).
    Unspecified,
    /// The unbound-global sentinel (never produced by evaluation).
    Undefined,
    /// An interned symbol.
    Sym(SymbolId),
    /// A builtin procedure, by index into the embedder's builtin table.
    Builtin(u16),
    /// A heap object.
    Obj(ObjRef),
}

impl Value {
    /// `#f`.
    pub const FALSE: Value = Value(singleton(0));
    /// `#t`.
    pub const TRUE: Value = Value(singleton(1));
    /// The empty list.
    pub const NIL: Value = Value(singleton(2));
    /// The end-of-file object.
    pub const EOF: Value = Value(singleton(3));
    /// The unspecified value (result of `set!`, `for-each`, ...).
    pub const UNSPECIFIED: Value = Value(singleton(4));
    /// The unbound-global sentinel. Never produced by evaluation: the VM
    /// initializes global cells to `UNDEFINED` so `GlobalRef`'s
    /// bound-check is a single load + compare instead of a second table
    /// lookup. Unreachable from Scheme code.
    pub const UNDEFINED: Value = Value(singleton(5));

    // --- constructors ---

    /// Whether `n` is representable as a fixnum (50 bits, signed).
    #[inline]
    pub const fn fits_fixnum(n: i64) -> bool {
        n >= FIXNUM_MIN && n <= FIXNUM_MAX
    }

    /// An exact integer.
    ///
    /// The payload must fit the 50-bit fixnum range
    /// ([`FIXNUM_MIN`]`..=`[`FIXNUM_MAX`]); this is debug-asserted, and in
    /// release the excess high bits are silently dropped (sign-extending
    /// truncation). Fallible producers (arithmetic, parsing) must go
    /// through [`Value::fixnum_checked`] and surface the overflow.
    #[inline]
    pub fn fixnum(n: i64) -> Value {
        debug_assert!(Value::fits_fixnum(n), "fixnum out of range: {n}");
        Value(FIXNUM | (n as u64 & FIXNUM_PAYLOAD))
    }

    /// An exact integer, or `None` if `n` exceeds the fixnum range.
    #[inline]
    pub fn fixnum_checked(n: i64) -> Option<Value> {
        Value::fits_fixnum(n).then(|| Value::fixnum(n))
    }

    /// An inexact real. NaNs (any payload, either sign) are canonicalized
    /// to one positive quiet NaN so no NaN bit pattern can alias a tag.
    #[inline]
    pub fn flonum(x: f64) -> Value {
        if x.is_nan() {
            Value(CANONICAL_NAN)
        } else {
            Value(x.to_bits())
        }
    }

    /// `#t` or `#f`.
    #[inline]
    pub const fn boolean(b: bool) -> Value {
        if b {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }

    /// A character.
    #[inline]
    pub fn character(c: char) -> Value {
        Value((TAG_MISC << 48) | u64::from(u32::from(c)))
    }

    /// An interned symbol.
    #[inline]
    pub fn sym(id: SymbolId) -> Value {
        Value((TAG_SYM << 48) | u64::from(id.index()))
    }

    /// A builtin procedure index.
    #[inline]
    pub fn builtin(i: u16) -> Value {
        Value((TAG_BUILTIN << 48) | u64::from(i))
    }

    /// A heap object.
    #[inline]
    pub fn obj(r: ObjRef) -> Value {
        Value((TAG_OBJ << 48) | u64::from(r.0))
    }

    // --- predicates ---

    #[inline]
    fn is_tagged(self) -> bool {
        self.0 & TAGGED == TAGGED
    }

    /// Scheme truthiness: everything but `#f` is true.
    #[inline]
    pub fn is_true(self) -> bool {
        self != Value::FALSE
    }

    /// Whether this is an exact integer.
    #[inline]
    pub fn is_fixnum(self) -> bool {
        self.0 & FIXNUM == FIXNUM
    }

    /// Whether this is an inexact real.
    #[inline]
    pub fn is_flonum(self) -> bool {
        !self.is_tagged()
    }

    /// Whether this is `#t` or `#f`.
    #[inline]
    pub fn is_boolean(self) -> bool {
        self == Value::TRUE || self == Value::FALSE
    }

    /// Whether this is a character.
    #[inline]
    pub fn is_char(self) -> bool {
        self.0 >> 48 == TAG_MISC && self.0 & MISC_SINGLETON == 0
    }

    /// Whether this is an interned symbol.
    #[inline]
    pub fn is_sym(self) -> bool {
        self.0 >> 48 == TAG_SYM
    }

    /// Whether this is a builtin procedure.
    #[inline]
    pub fn is_builtin(self) -> bool {
        self.0 >> 48 == TAG_BUILTIN
    }

    /// Whether this is a heap object.
    #[inline]
    pub fn is_obj(self) -> bool {
        self.0 >> 48 == TAG_OBJ
    }

    /// Whether this is a heap object of the given kind — one mask+compare,
    /// no heap access.
    #[inline]
    pub fn is_obj_kind(self, kind: ObjKind) -> bool {
        const KIND_MASK: u64 = 0xFFFF_0000_0000_0000 | ((7u32 << INDEX_BITS) as u64);
        self.0 & KIND_MASK == (TAG_OBJ << 48) | u64::from((kind as u32) << INDEX_BITS)
    }

    /// Whether this is a pair (the dominant `is_obj_kind` query).
    #[inline]
    pub fn is_pair(self) -> bool {
        self.is_obj_kind(ObjKind::Pair)
    }

    // --- accessors ---

    /// The fixnum payload, if this is one.
    #[inline]
    pub fn as_fixnum(self) -> Option<i64> {
        self.is_fixnum().then_some(((self.0 << 14) as i64) >> 14)
    }

    /// The flonum payload, if this is one.
    #[inline]
    pub fn as_flonum(self) -> Option<f64> {
        self.is_flonum().then(|| f64::from_bits(self.0))
    }

    /// The character payload, if this is one.
    #[inline]
    pub fn as_char(self) -> Option<char> {
        // The low 32 bits of a char word are exactly the scalar value the
        // constructor stored, so the round trip cannot fail.
        self.is_char().then(|| char::from_u32(self.0 as u32).expect("char scalar"))
    }

    /// The symbol id, if this is one.
    #[inline]
    pub fn as_sym(self) -> Option<SymbolId> {
        self.is_sym().then(|| SymbolId::from_raw(self.0 as u32))
    }

    /// The builtin index, if this is one.
    #[inline]
    pub fn as_builtin(self) -> Option<u16> {
        self.is_builtin().then_some(self.0 as u16)
    }

    /// The heap reference, if this is a heap object.
    #[inline]
    pub fn as_obj(self) -> Option<ObjRef> {
        self.is_obj().then_some(ObjRef(self.0 as u32))
    }

    /// Explodes the word into an enum for exhaustive matching.
    #[inline]
    pub fn unpack(self) -> Unpacked {
        if !self.is_tagged() {
            return Unpacked::Flonum(f64::from_bits(self.0));
        }
        match (self.0 >> 48) & 7 {
            0 => Unpacked::Obj(ObjRef(self.0 as u32)),
            1 => Unpacked::Sym(SymbolId::from_raw(self.0 as u32)),
            2 => Unpacked::Builtin(self.0 as u16),
            3 => {
                if self.0 & MISC_SINGLETON == 0 {
                    Unpacked::Char(char::from_u32(self.0 as u32).expect("char scalar"))
                } else {
                    match self.0 & 7 {
                        0 => Unpacked::Bool(false),
                        1 => Unpacked::Bool(true),
                        2 => Unpacked::Nil,
                        3 => Unpacked::Eof,
                        4 => Unpacked::Unspecified,
                        _ => Unpacked::Undefined,
                    }
                }
            }
            _ => Unpacked::Fixnum(((self.0 << 14) as i64) >> 14),
        }
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Print the unpacked view (with the old enum's variant spellings)
        // so diagnostics stay readable.
        match self.unpack() {
            Unpacked::Fixnum(n) => write!(f, "Fixnum({n})"),
            Unpacked::Flonum(x) => write!(f, "Flonum({x})"),
            Unpacked::Bool(b) => write!(f, "Bool({b})"),
            Unpacked::Char(c) => write!(f, "Char({c:?})"),
            Unpacked::Nil => write!(f, "Nil"),
            Unpacked::Eof => write!(f, "Eof"),
            Unpacked::Unspecified => write!(f, "Unspecified"),
            Unpacked::Undefined => write!(f, "Undefined"),
            Unpacked::Sym(s) => write!(f, "Sym({})", s.index()),
            Unpacked::Builtin(i) => write!(f, "Builtin({i})"),
            Unpacked::Obj(r) => write!(f, "Obj({:?}:{})", r.kind(), r.pool_index()),
        }
    }
}

impl Default for Value {
    /// The unspecified value.
    fn default() -> Self {
        Value::UNSPECIFIED
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::fixnum(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::boolean(b)
    }
}

impl From<char> for Value {
    fn from(c: char) -> Self {
        Value::character(c)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::flonum(x)
    }
}

/// The whole point: a value is one machine word.
const _: () = assert!(std::mem::size_of::<Value>() == 8, "Value must be one word");
const _: () = assert!(std::mem::size_of::<Option<Value>>() == 16);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::FALSE.is_true());
        assert!(Value::TRUE.is_true());
        assert!(Value::fixnum(0).is_true());
        assert!(Value::NIL.is_true());
        assert!(Value::UNSPECIFIED.is_true());
    }

    #[test]
    fn eqv_semantics() {
        assert_eq!(Value::fixnum(3), Value::from(3));
        assert_eq!(Value::from(true), Value::TRUE);
        assert_eq!(Value::from('c'), Value::character('c'));
        assert_eq!(Value::from(1.5), Value::flonum(1.5));
        assert_ne!(Value::obj(ObjRef(0)), Value::obj(ObjRef(1)));
        assert_eq!(Value::default(), Value::UNSPECIFIED);
    }

    #[test]
    fn singletons_are_distinct() {
        let all = [
            Value::FALSE,
            Value::TRUE,
            Value::NIL,
            Value::EOF,
            Value::UNSPECIFIED,
            Value::UNDEFINED,
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(a == b, i == j, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn fixnum_range_round_trips() {
        for n in [0, 1, -1, 42, -42, FIXNUM_MIN, FIXNUM_MAX, FIXNUM_MIN + 1, FIXNUM_MAX - 1] {
            assert_eq!(Value::fixnum(n).as_fixnum(), Some(n));
            assert_eq!(Value::fixnum(n).unpack(), Unpacked::Fixnum(n));
        }
        assert!(Value::fixnum_checked(FIXNUM_MAX + 1).is_none());
        assert!(Value::fixnum_checked(FIXNUM_MIN - 1).is_none());
        assert!(Value::fixnum_checked(i64::MAX).is_none());
        assert!(Value::fixnum_checked(i64::MIN).is_none());
    }

    #[test]
    fn flonum_bits_round_trip() {
        for x in [0.0, -0.0, 1.5, -1.5, f64::INFINITY, f64::NEG_INFINITY, f64::MIN, f64::MAX] {
            let v = Value::flonum(x);
            assert!(v.is_flonum());
            assert_eq!(v.as_flonum().map(f64::to_bits), Some(x.to_bits()), "{x}");
        }
        // NaNs canonicalize: every NaN encodes to the same word, which is
        // still a NaN and never reads back as a tagged value.
        let nan = Value::flonum(f64::NAN);
        assert!(nan.is_flonum());
        assert!(nan.as_flonum().unwrap().is_nan());
        assert_eq!(nan, Value::flonum(-f64::NAN));
        assert_eq!(nan, Value::flonum(f64::from_bits(0xFFF8_DEAD_BEEF_0001)));
    }

    #[test]
    fn chars_and_indices_round_trip() {
        for c in ['a', '\0', ' ', 'λ', char::MAX] {
            assert_eq!(Value::character(c).as_char(), Some(c));
        }
        assert_eq!(Value::builtin(u16::MAX).as_builtin(), Some(u16::MAX));
        let s = SymbolId::from_raw(u32::MAX);
        assert_eq!(Value::sym(s).as_sym(), Some(s));
    }

    #[test]
    fn classes_do_not_alias() {
        // A zero payload in every tagged class, plus flonum 0.0: all
        // pairwise distinct words.
        let vs = [
            Value::fixnum(0),
            Value::flonum(0.0),
            Value::character('\0'),
            Value::builtin(0),
            Value::sym(SymbolId::from_raw(0)),
            Value::obj(ObjRef(0)),
            Value::FALSE,
        ];
        for (i, a) in vs.iter().enumerate() {
            for (j, b) in vs.iter().enumerate() {
                assert_eq!(a == b, i == j, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn kind_predicates() {
        let p = Value::obj(ObjRef::pack(ObjKind::Pair, 7));
        assert!(p.is_pair() && p.is_obj());
        let v = Value::obj(ObjRef::pack(ObjKind::Vector, 7));
        assert!(!v.is_pair() && v.is_obj_kind(ObjKind::Vector));
        assert!(!Value::fixnum(7).is_pair());
        assert!(!Value::flonum(0.0).is_obj());
    }
}
