//! Robustness: the reader must never panic, whatever bytes arrive — it
//! returns data or an error.

use oneshot_sexp::read_all;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn reader_never_panics_on_arbitrary_input(src in any::<String>()) {
        let _ = read_all(&src);
    }

    #[test]
    fn reader_never_panics_on_scheme_ish_input(
        src in "[()#'`,@a-z0-9.\\\\\" \\n;|+-]{0,64}"
    ) {
        let _ = read_all(&src);
    }
}

#[test]
fn pathological_inputs_error_cleanly() {
    for src in [
        "#", "#\\", "#x", "#xzz", "\"\\q\"", "(((((", ")))))", "'", "#;", "#;#;", "#|", "(1 . )",
        "(. )", "...1", "1.2.3", ",",
    ] {
        assert!(read_all(src).is_err(), "{src:?} should be an error");
    }
    // Deeply nested input must not blow the parser (recursion is per
    // nesting level). Debug-build frames are large enough that 2000 levels
    // exceed the 2 MiB default test stack, so give this check its own
    // thread with room to spare.
    std::thread::Builder::new()
        .stack_size(32 * 1024 * 1024)
        .spawn(|| {
            let deep = format!("{}1{}", "(".repeat(2000), ")".repeat(2000));
            assert!(read_all(&deep).is_ok());
        })
        .unwrap()
        .join()
        .unwrap();
}
