//! Property test: `read ∘ write` is the identity on data.

use oneshot_sexp::{read_str, write_datum, Datum};
use proptest::prelude::*;

fn symbol_strategy() -> impl Strategy<Value = String> {
    // Initial from the symbol alphabet, then subsequents.
    "[a-z!$%&*/:<=>?^_~][a-z0-9!$%&*/:<=>?^_~+.@-]{0,10}".prop_map(|s| s)
}

fn leaf() -> impl Strategy<Value = Datum> {
    prop_oneof![
        any::<bool>().prop_map(Datum::Bool),
        any::<i64>().prop_map(Datum::Fixnum),
        (-1.0e9..1.0e9_f64).prop_map(Datum::Flonum),
        proptest::char::range('!', '~').prop_map(Datum::Char),
        prop_oneof![Just(' '), Just('\n'), Just('\t')].prop_map(Datum::Char),
        "[ -~]{0,12}".prop_map(Datum::Str),
        symbol_strategy().prop_map(Datum::Symbol),
        Just(Datum::Nil),
    ]
}

fn datum_strategy() -> impl Strategy<Value = Datum> {
    leaf().prop_recursive(4, 64, 6, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Datum::cons(a, b)),
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Datum::list),
            proptest::collection::vec(inner, 0..6).prop_map(Datum::Vector),
        ]
    })
}

// Structural equality with approximate flonum comparison is unnecessary:
// the writer prints f64 with round-trip precision, so exact equality holds.
proptest! {
    #[test]
    fn write_then_read_is_identity(d in datum_strategy()) {
        let text = write_datum(&d);
        let back = read_str(&text).unwrap_or_else(|e| panic!("reread failed on {text:?}: {e}"));
        prop_assert_eq!(back, d);
    }

    #[test]
    fn display_never_panics(d in datum_strategy()) {
        let _ = oneshot_sexp::display_datum(&d);
    }
}

#[test]
fn sugar_survives_roundtrip() {
    for src in ["'x", "`(a ,b ,@c)", "''x"] {
        let d = read_str(src).unwrap();
        let text = write_datum(&d);
        assert_eq!(read_str(&text).unwrap(), d);
    }
}
