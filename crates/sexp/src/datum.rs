//! The external-representation tree.

use std::fmt;

/// A Scheme datum as produced by the reader.
///
/// This is a plain tree (pairs own their halves); the runtime converts
/// data into heap values with sharing when a program is loaded.
///
/// `Clone`, `PartialEq`, `Debug`, and `Drop` are implemented manually so
/// that they iterate along cdr spines: a list literal is arbitrarily long,
/// and derived (recursive) implementations would overflow the native stack
/// on lists beyond a few tens of thousands of elements. Recursion depth is
/// bounded by *nesting* depth only, which the reader already bounds.
pub enum Datum {
    /// `#t` or `#f`.
    Bool(bool),
    /// An exact integer.
    Fixnum(i64),
    /// An inexact real.
    Flonum(f64),
    /// A character, e.g. `#\a`.
    Char(char),
    /// A string literal.
    Str(String),
    /// A symbol.
    Symbol(String),
    /// The empty list `()`.
    Nil,
    /// A pair `(car . cdr)`.
    Pair(Box<(Datum, Datum)>),
    /// A vector literal `#( ... )`.
    Vector(Vec<Datum>),
}

impl Datum {
    /// Constructs a pair.
    pub fn cons(car: Datum, cdr: Datum) -> Datum {
        Datum::Pair(Box::new((car, cdr)))
    }

    /// Constructs a symbol from anything string-like.
    pub fn symbol(name: impl Into<String>) -> Datum {
        Datum::Symbol(name.into())
    }

    /// Builds a proper list from an iterator.
    pub fn list<I>(items: I) -> Datum
    where
        I: IntoIterator<Item = Datum>,
        I::IntoIter: DoubleEndedIterator,
    {
        let mut d = Datum::Nil;
        for item in items.into_iter().rev() {
            d = Datum::cons(item, d);
        }
        d
    }

    /// The car of a pair, if this is one.
    pub fn car(&self) -> Option<&Datum> {
        match self {
            Datum::Pair(p) => Some(&p.0),
            _ => None,
        }
    }

    /// The cdr of a pair, if this is one.
    pub fn cdr(&self) -> Option<&Datum> {
        match self {
            Datum::Pair(p) => Some(&p.1),
            _ => None,
        }
    }

    /// The symbol name, if this is a symbol.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Datum::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is the empty list.
    pub fn is_nil(&self) -> bool {
        matches!(self, Datum::Nil)
    }

    /// Iterates over the elements of a proper list prefix; iteration stops
    /// at the first non-pair tail (which [`ListIter::tail`] exposes).
    pub fn iter(&self) -> ListIter<'_> {
        ListIter { cur: self }
    }

    /// Collects a proper list into a vector; `None` for improper lists or
    /// non-lists.
    pub fn proper_list(&self) -> Option<Vec<&Datum>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Datum::Nil => return Some(out),
                Datum::Pair(p) => {
                    out.push(&p.0);
                    cur = &p.1;
                }
                _ => return None,
            }
        }
    }
}

impl fmt::Display for Datum {
    /// Formats using `write` conventions (strings quoted, characters with
    /// `#\` syntax); see [`crate::write_datum`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::writer::fmt_datum(self, f, true)
    }
}

impl fmt::Debug for Datum {
    /// Same as `Display` (the writer iterates along spines, so debugging a
    /// long list cannot overflow the stack).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Clone for Datum {
    fn clone(&self) -> Datum {
        match self {
            Datum::Bool(b) => Datum::Bool(*b),
            Datum::Fixnum(n) => Datum::Fixnum(*n),
            Datum::Flonum(x) => Datum::Flonum(*x),
            Datum::Char(c) => Datum::Char(*c),
            Datum::Str(s) => Datum::Str(s.clone()),
            Datum::Symbol(s) => Datum::Symbol(s.clone()),
            Datum::Nil => Datum::Nil,
            Datum::Vector(items) => Datum::Vector(items.clone()),
            Datum::Pair(_) => {
                // Clone the cdr spine iteratively; cars recurse (bounded by
                // nesting depth).
                let mut elems = Vec::new();
                let mut cur = self;
                while let Datum::Pair(p) = cur {
                    elems.push(p.0.clone());
                    cur = &p.1;
                }
                let mut out = cur.clone();
                for e in elems.into_iter().rev() {
                    out = Datum::cons(e, out);
                }
                out
            }
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Datum) -> bool {
        let (mut a, mut b) = (self, other);
        loop {
            match (a, b) {
                (Datum::Pair(p), Datum::Pair(q)) => {
                    if p.0 != q.0 {
                        return false;
                    }
                    a = &p.1;
                    b = &q.1;
                }
                (Datum::Bool(x), Datum::Bool(y)) => return x == y,
                (Datum::Fixnum(x), Datum::Fixnum(y)) => return x == y,
                (Datum::Flonum(x), Datum::Flonum(y)) => return x == y,
                (Datum::Char(x), Datum::Char(y)) => return x == y,
                (Datum::Str(x), Datum::Str(y)) => return x == y,
                (Datum::Symbol(x), Datum::Symbol(y)) => return x == y,
                (Datum::Nil, Datum::Nil) => return true,
                (Datum::Vector(x), Datum::Vector(y)) => return x == y,
                _ => return false,
            }
        }
    }
}

impl Drop for Datum {
    /// Unravels the cdr spine iteratively so that dropping a long list does
    /// not recurse once per element.
    fn drop(&mut self) {
        let Datum::Pair(p) = self else { return };
        let mut cdr = std::mem::replace(&mut p.1, Datum::Nil);
        while let Datum::Pair(ref mut q) = cdr {
            let next = std::mem::replace(&mut q.1, Datum::Nil);
            // The detached cell (cdr now Nil) drops here; only its car can
            // recurse, bounded by nesting depth.
            cdr = next;
        }
    }
}

/// Iterator over the elements of a (possibly improper) list.
///
/// Produced by [`Datum::iter`].
#[derive(Debug, Clone)]
pub struct ListIter<'a> {
    cur: &'a Datum,
}

impl<'a> ListIter<'a> {
    /// The remaining tail — `Nil` after a proper list is exhausted, or the
    /// final non-pair datum of an improper list.
    pub fn tail(&self) -> &'a Datum {
        self.cur
    }
}

impl<'a> Iterator for ListIter<'a> {
    type Item = &'a Datum;

    fn next(&mut self) -> Option<&'a Datum> {
        match self.cur {
            Datum::Pair(p) => {
                self.cur = &p.1;
                Some(&p.0)
            }
            _ => None,
        }
    }
}

impl FromIterator<Datum> for Datum {
    fn from_iter<I: IntoIterator<Item = Datum>>(iter: I) -> Datum {
        Datum::list(iter.into_iter().collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_construction_and_iteration() {
        let d = Datum::list([Datum::Fixnum(1), Datum::Fixnum(2), Datum::Fixnum(3)]);
        let items: Vec<i64> = d
            .iter()
            .map(|x| match x {
                Datum::Fixnum(n) => *n,
                _ => panic!(),
            })
            .collect();
        assert_eq!(items, vec![1, 2, 3]);
        assert!(d.proper_list().is_some());
    }

    #[test]
    fn improper_list_exposes_tail() {
        let d = Datum::cons(Datum::Fixnum(1), Datum::symbol("x"));
        let mut it = d.iter();
        assert_eq!(it.next(), Some(&Datum::Fixnum(1)));
        assert_eq!(it.next(), None);
        assert_eq!(it.tail(), &Datum::symbol("x"));
        assert!(d.proper_list().is_none());
    }

    #[test]
    fn accessors() {
        let d = Datum::cons(Datum::Bool(true), Datum::Nil);
        assert_eq!(d.car(), Some(&Datum::Bool(true)));
        assert_eq!(d.cdr(), Some(&Datum::Nil));
        assert!(Datum::Nil.is_nil());
        assert_eq!(Datum::symbol("abc").as_symbol(), Some("abc"));
        assert_eq!(Datum::Fixnum(1).as_symbol(), None);
    }
}
