//! Tokenizer for R4RS-style lexical syntax.

use std::fmt;

/// A half-open byte range with line/column of its start, for error
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kind of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `#(` — vector open.
    VecOpen,
    /// `'`
    Quote,
    /// `` ` ``
    Quasiquote,
    /// `,`
    Unquote,
    /// `,@`
    UnquoteSplicing,
    /// `.` as a dotted-pair marker.
    Dot,
    /// `#;` — datum comment prefix.
    DatumComment,
    /// A boolean literal.
    Bool(bool),
    /// An exact integer literal.
    Fixnum(i64),
    /// An inexact real literal.
    Flonum(f64),
    /// A character literal.
    Char(char),
    /// A string literal (unescaped contents).
    Str(String),
    /// A symbol.
    Symbol(String),
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was read.
    pub kind: TokenKind,
    /// Where it was read.
    pub span: Span,
}

/// A lexical error with location.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Where the problem was found.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for LexError {}

/// A tokenizer over a source string.
#[derive(Debug, Clone)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

fn is_delimiter(b: u8) -> bool {
    matches!(b, b'(' | b')' | b'[' | b']' | b'"' | b';') || b.is_ascii_whitespace()
}

fn is_symbol_initial(b: u8) -> bool {
    b.is_ascii_alphabetic()
        || matches!(
            b,
            b'!' | b'$'
                | b'%'
                | b'&'
                | b'*'
                | b'/'
                | b':'
                | b'<'
                | b'='
                | b'>'
                | b'?'
                | b'^'
                | b'_'
                | b'~'
        )
}

fn is_symbol_subsequent(b: u8) -> bool {
    is_symbol_initial(b) || b.is_ascii_digit() || matches!(b, b'+' | b'-' | b'.' | b'@' | b'#')
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, start: (usize, u32, u32)) -> Span {
        Span { start: start.0, end: self.pos, line: start.1, col: start.2 }
    }

    fn err(&self, start: (usize, u32, u32), message: impl Into<String>) -> LexError {
        LexError { message: message.into(), span: self.span_from(start) }
    }

    fn skip_atmosphere(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'#') if self.peek2() == Some(b'|') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    let mut depth = 1u32;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'|'), Some(b'#')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(b'#'), Some(b'|')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.err(start, "unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produces the next token, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] on malformed input (bad character literal,
    /// unterminated string or block comment, number out of range).
    #[allow(clippy::too_many_lines)]
    pub fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        self.skip_atmosphere()?;
        let start = self.here();
        let Some(b) = self.peek() else { return Ok(None) };
        let kind = match b {
            b'(' | b'[' => {
                self.bump();
                TokenKind::LParen
            }
            b')' | b']' => {
                self.bump();
                TokenKind::RParen
            }
            b'\'' => {
                self.bump();
                TokenKind::Quote
            }
            b'`' => {
                self.bump();
                TokenKind::Quasiquote
            }
            b',' => {
                self.bump();
                if self.peek() == Some(b'@') {
                    self.bump();
                    TokenKind::UnquoteSplicing
                } else {
                    TokenKind::Unquote
                }
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.err(start, "unterminated string")),
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'"') => s.push('"'),
                            Some(b'0') => s.push('\0'),
                            Some(c) => {
                                return Err(self
                                    .err(start, format!("unknown string escape \\{}", c as char)))
                            }
                            None => return Err(self.err(start, "unterminated string")),
                        },
                        Some(c) if c < 0x80 => s.push(c as char),
                        Some(_) => {
                            // Re-decode a UTF-8 sequence from the source.
                            let begin = self.pos - 1;
                            let ch = self.src[begin..]
                                .chars()
                                .next()
                                .ok_or_else(|| self.err(start, "invalid UTF-8 in string"))?;
                            for _ in 1..ch.len_utf8() {
                                self.bump();
                            }
                            s.push(ch);
                        }
                    }
                }
                TokenKind::Str(s)
            }
            b'#' => match self.peek2() {
                Some(b'(') => {
                    self.bump();
                    self.bump();
                    TokenKind::VecOpen
                }
                Some(b't') => {
                    self.bump();
                    self.bump();
                    TokenKind::Bool(true)
                }
                Some(b'f') => {
                    self.bump();
                    self.bump();
                    TokenKind::Bool(false)
                }
                Some(b';') => {
                    self.bump();
                    self.bump();
                    TokenKind::DatumComment
                }
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                    // Character: named or literal.
                    let cstart = self.pos;
                    let first = self.src[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err(start, "end of input in character literal"))?;
                    for _ in 0..first.len_utf8() {
                        self.bump();
                    }
                    // Consume any following symbol characters (for names).
                    while let Some(c) = self.peek() {
                        if is_delimiter(c) {
                            break;
                        }
                        self.bump();
                    }
                    let text = &self.src[cstart..self.pos];
                    let ch = if text.chars().count() == 1 {
                        first
                    } else {
                        match text.to_ascii_lowercase().as_str() {
                            "space" => ' ',
                            "newline" | "linefeed" => '\n',
                            "tab" => '\t',
                            "return" => '\r',
                            "nul" | "null" => '\0',
                            "altmode" | "escape" => '\x1b',
                            "backspace" => '\x08',
                            "delete" | "rubout" => '\x7f',
                            _ => {
                                return Err(
                                    self.err(start, format!("unknown character name #\\{text}"))
                                )
                            }
                        }
                    };
                    TokenKind::Char(ch)
                }
                Some(b'x') | Some(b'X') => {
                    self.bump();
                    self.bump();
                    let nstart = self.pos;
                    while let Some(c) = self.peek() {
                        if is_delimiter(c) {
                            break;
                        }
                        self.bump();
                    }
                    let text = &self.src[nstart..self.pos];
                    let (neg, digits) = match text.strip_prefix('-') {
                        Some(rest) => (true, rest),
                        None => (false, text),
                    };
                    let n = i64::from_str_radix(digits, 16)
                        .map_err(|_| self.err(start, format!("bad hex literal #x{text}")))?;
                    TokenKind::Fixnum(if neg { -n } else { n })
                }
                other => {
                    return Err(self.err(
                        start,
                        format!(
                            "unknown # syntax: #{}",
                            other.map_or(String::from("<eof>"), |c| (c as char).to_string())
                        ),
                    ))
                }
            },
            _ => {
                // Number, symbol, or dot. Accumulate until a delimiter.
                let astart = self.pos;
                while let Some(c) = self.peek() {
                    if is_delimiter(c) {
                        break;
                    }
                    self.bump();
                }
                let text = &self.src[astart..self.pos];
                if text.is_empty() {
                    return Err(self.err(start, format!("unexpected character {:?}", b as char)));
                }
                if text == "." {
                    TokenKind::Dot
                } else if let Some(kind) = parse_number(text) {
                    kind
                } else if (text.bytes().next().map(is_symbol_initial) == Some(true)
                    && text.bytes().all(is_symbol_subsequent))
                    || matches!(text, "+" | "-" | "...")
                    || text.starts_with("->")
                {
                    TokenKind::Symbol(text.to_string())
                } else {
                    return Err(self.err(start, format!("invalid token {text:?}")));
                }
            }
        };
        Ok(Some(Token { kind, span: self.span_from(start) }))
    }
}

/// Parses a decimal fixnum or flonum; `None` if `text` is not a number.
fn parse_number(text: &str) -> Option<TokenKind> {
    let body = text.strip_prefix(['+', '-']).unwrap_or(text);
    if body.is_empty() || !body.bytes().next()?.is_ascii_digit() && !body.starts_with('.') {
        return None;
    }
    if body.bytes().all(|b| b.is_ascii_digit()) {
        return text.parse::<i64>().ok().map(TokenKind::Fixnum);
    }
    // Flonum: digits with a dot and/or exponent.
    let valid =
        body.bytes().all(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'));
    if valid && (body.contains('.') || body.contains('e') || body.contains('E')) {
        return text.parse::<f64>().ok().map(TokenKind::Flonum);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Vec<TokenKind> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        while let Some(t) = lx.next_token().unwrap() {
            out.push(t.kind);
        }
        out
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            lex("(foo 42 -7 #t #f)"),
            vec![
                TokenKind::LParen,
                TokenKind::Symbol("foo".into()),
                TokenKind::Fixnum(42),
                TokenKind::Fixnum(-7),
                TokenKind::Bool(true),
                TokenKind::Bool(false),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn quote_sugar_tokens() {
        assert_eq!(
            lex("'a `b ,c ,@d"),
            vec![
                TokenKind::Quote,
                TokenKind::Symbol("a".into()),
                TokenKind::Quasiquote,
                TokenKind::Symbol("b".into()),
                TokenKind::Unquote,
                TokenKind::Symbol("c".into()),
                TokenKind::UnquoteSplicing,
                TokenKind::Symbol("d".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(lex(r#""a\nb\"c""#), vec![TokenKind::Str("a\nb\"c".into())]);
    }

    #[test]
    fn characters_named_and_literal() {
        assert_eq!(
            lex(r"#\a #\space #\newline #\("),
            vec![
                TokenKind::Char('a'),
                TokenKind::Char(' '),
                TokenKind::Char('\n'),
                TokenKind::Char('('),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            lex("1 -2 +3 1.5 -2e3 #x10 #x-ff"),
            vec![
                TokenKind::Fixnum(1),
                TokenKind::Fixnum(-2),
                TokenKind::Fixnum(3),
                TokenKind::Flonum(1.5),
                TokenKind::Flonum(-2000.0),
                TokenKind::Fixnum(16),
                TokenKind::Fixnum(-255),
            ]
        );
    }

    #[test]
    fn peculiar_identifiers() {
        assert_eq!(
            lex("+ - ... ->foo a->b list->vector"),
            vec![
                TokenKind::Symbol("+".into()),
                TokenKind::Symbol("-".into()),
                TokenKind::Symbol("...".into()),
                TokenKind::Symbol("->foo".into()),
                TokenKind::Symbol("a->b".into()),
                TokenKind::Symbol("list->vector".into()),
            ]
        );
    }

    #[test]
    fn comments_are_atmosphere() {
        assert_eq!(
            lex("; line\n1 #| block #| nested |# still |# 2"),
            vec![TokenKind::Fixnum(1), TokenKind::Fixnum(2)]
        );
        assert_eq!(lex("#;"), vec![TokenKind::DatumComment]);
    }

    #[test]
    fn brackets_are_parens() {
        assert_eq!(
            lex("[a]"),
            vec![TokenKind::LParen, TokenKind::Symbol("a".into()), TokenKind::RParen]
        );
    }

    #[test]
    fn spans_track_lines() {
        let mut lx = Lexer::new("a\n  b");
        let a = lx.next_token().unwrap().unwrap();
        let b = lx.next_token().unwrap().unwrap();
        assert_eq!((a.span.line, a.span.col), (1, 1));
        assert_eq!((b.span.line, b.span.col), (2, 3));
    }

    #[test]
    fn errors_carry_location() {
        let mut lx = Lexer::new("\"abc");
        let e = lx.next_token().unwrap_err();
        assert!(e.message.contains("unterminated"));
        assert_eq!(e.span.line, 1);
    }

    #[test]
    fn dotted_token() {
        assert_eq!(
            lex("(a . b)"),
            vec![
                TokenKind::LParen,
                TokenKind::Symbol("a".into()),
                TokenKind::Dot,
                TokenKind::Symbol("b".into()),
                TokenKind::RParen,
            ]
        );
    }
}
