//! S-expression reading and writing for the oneshot Scheme system.
//!
//! Provides the external representation layer: a [`Datum`] tree type, a
//! reader with source positions and R4RS-style lexical syntax (lists,
//! dotted pairs, vectors, strings, characters, booleans, fixnums, flonums,
//! symbols, quotation sugar, and all three comment forms), and a writer
//! with both `write` (machine-readable) and `display` (human-readable)
//! conventions.
//!
//! # Example
//!
//! ```
//! use oneshot_sexp::{read_str, Datum};
//!
//! let d = read_str("(+ 1 (quote x))").unwrap();
//! assert_eq!(d.to_string(), "(+ 1 'x)");
//! assert!(matches!(d, Datum::Pair(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod datum;
mod lexer;
mod reader;
mod writer;

pub use datum::{Datum, ListIter};
pub use lexer::{LexError, Lexer, Span, Token, TokenKind};
pub use reader::{read_all, read_str, ReadError, Reader};
pub use writer::{display_datum, write_datum};
