//! The datum writer.

use std::fmt::{self, Write as _};

use crate::datum::Datum;

/// Formats `d` using `write` conventions: strings are quoted and escaped,
/// characters use `#\` notation, quotation forms print with their sugar.
pub fn write_datum(d: &Datum) -> String {
    let mut s = String::new();
    let _ = fmt_into(&mut s, d, true);
    s
}

/// Formats `d` using `display` conventions: strings and characters print
/// as their contents.
pub fn display_datum(d: &Datum) -> String {
    let mut s = String::new();
    let _ = fmt_into(&mut s, d, false);
    s
}

pub(crate) fn fmt_datum(d: &Datum, f: &mut fmt::Formatter<'_>, write: bool) -> fmt::Result {
    let mut s = String::new();
    fmt_into(&mut s, d, write)?;
    f.write_str(&s)
}

/// The sugar prefix for a two-element `(tag x)` form, if `tag` has one.
fn sugar_prefix(tag: &str) -> Option<&'static str> {
    match tag {
        "quote" => Some("'"),
        "quasiquote" => Some("`"),
        "unquote" => Some(","),
        "unquote-splicing" => Some(",@"),
        _ => None,
    }
}

fn fmt_into(out: &mut String, d: &Datum, write: bool) -> fmt::Result {
    match d {
        Datum::Bool(true) => out.write_str("#t"),
        Datum::Bool(false) => out.write_str("#f"),
        Datum::Fixnum(n) => write!(out, "{n}"),
        Datum::Flonum(x) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                write!(out, "{x:.1}")
            } else {
                write!(out, "{x}")
            }
        }
        Datum::Char(c) if write => match c {
            ' ' => out.write_str("#\\space"),
            '\n' => out.write_str("#\\newline"),
            '\t' => out.write_str("#\\tab"),
            '\r' => out.write_str("#\\return"),
            '\0' => out.write_str("#\\nul"),
            c => write!(out, "#\\{c}"),
        },
        Datum::Char(c) => write!(out, "{c}"),
        Datum::Str(s) if write => {
            out.write_char('"')?;
            for c in s.chars() {
                match c {
                    '"' => out.write_str("\\\"")?,
                    '\\' => out.write_str("\\\\")?,
                    '\n' => out.write_str("\\n")?,
                    '\t' => out.write_str("\\t")?,
                    '\r' => out.write_str("\\r")?,
                    '\0' => out.write_str("\\0")?,
                    c => out.write_char(c)?,
                }
            }
            out.write_char('"')
        }
        Datum::Str(s) => out.write_str(s),
        Datum::Symbol(s) => out.write_str(s),
        Datum::Nil => out.write_str("()"),
        Datum::Pair(p) => {
            // Quotation sugar.
            if let (Datum::Symbol(tag), Datum::Pair(rest)) = (&p.0, &p.1) {
                if rest.1.is_nil() {
                    if let Some(prefix) = sugar_prefix(tag) {
                        out.write_str(prefix)?;
                        return fmt_into(out, &rest.0, write);
                    }
                }
            }
            out.write_char('(')?;
            fmt_into(out, &p.0, write)?;
            let mut cur = &p.1;
            loop {
                match cur {
                    Datum::Nil => break,
                    Datum::Pair(q) => {
                        out.write_char(' ')?;
                        fmt_into(out, &q.0, write)?;
                        cur = &q.1;
                    }
                    other => {
                        out.write_str(" . ")?;
                        fmt_into(out, other, write)?;
                        break;
                    }
                }
            }
            out.write_char(')')
        }
        Datum::Vector(items) => {
            out.write_str("#(")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(' ')?;
                }
                fmt_into(out, item, write)?;
            }
            out.write_char(')')
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_str;

    #[test]
    fn write_quotes_strings_display_does_not() {
        let d = Datum::Str("a\"b\n".into());
        assert_eq!(write_datum(&d), "\"a\\\"b\\n\"");
        assert_eq!(display_datum(&d), "a\"b\n");
    }

    #[test]
    fn characters() {
        assert_eq!(write_datum(&Datum::Char(' ')), "#\\space");
        assert_eq!(write_datum(&Datum::Char('q')), "#\\q");
        assert_eq!(display_datum(&Datum::Char('q')), "q");
    }

    #[test]
    fn lists_round_trip_textually() {
        for src in ["(1 2 3)", "(1 . 2)", "(a (b . c) #(1 2))", "()", "'(1 2)", "`(a ,b ,@c)"] {
            let d = read_str(src).unwrap();
            assert_eq!(write_datum(&d), *src);
        }
    }

    #[test]
    fn flonums_keep_a_decimal_point() {
        assert_eq!(write_datum(&Datum::Flonum(2.0)), "2.0");
        assert_eq!(write_datum(&Datum::Flonum(1.5)), "1.5");
    }
}
