//! The datum reader (parser).

use std::fmt;

use crate::datum::Datum;
use crate::lexer::{LexError, Lexer, Span, Token, TokenKind};

/// A read error: lexical or structural.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadError {
    /// Human-readable description.
    pub message: String,
    /// Location, when known.
    pub span: Option<Span>,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(f, "{} at {}", self.message, s),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<LexError> for ReadError {
    fn from(e: LexError) -> Self {
        ReadError { message: e.message, span: Some(e.span) }
    }
}

/// A streaming datum reader over a source string.
#[derive(Debug)]
pub struct Reader<'a> {
    lexer: Lexer<'a>,
    peeked: Option<Token>,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `src`.
    pub fn new(src: &'a str) -> Self {
        Reader { lexer: Lexer::new(src), peeked: None }
    }

    fn next_token(&mut self) -> Result<Option<Token>, ReadError> {
        if let Some(t) = self.peeked.take() {
            return Ok(Some(t));
        }
        Ok(self.lexer.next_token()?)
    }

    fn unread(&mut self, t: Token) {
        debug_assert!(self.peeked.is_none());
        self.peeked = Some(t);
    }

    /// Reads the next datum, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns a [`ReadError`] on malformed input: unbalanced parentheses,
    /// misplaced dots, lexical errors.
    pub fn read(&mut self) -> Result<Option<Datum>, ReadError> {
        let Some(tok) = self.next_token()? else { return Ok(None) };
        self.read_after(tok).map(Some)
    }

    fn expect_datum(&mut self, what: &str, at: Span) -> Result<Datum, ReadError> {
        match self.read()? {
            Some(d) => Ok(d),
            None => Err(ReadError {
                message: format!("end of input: expected a datum after {what}"),
                span: Some(at),
            }),
        }
    }

    fn read_after(&mut self, tok: Token) -> Result<Datum, ReadError> {
        let span = tok.span;
        match tok.kind {
            TokenKind::Bool(b) => Ok(Datum::Bool(b)),
            TokenKind::Fixnum(n) => Ok(Datum::Fixnum(n)),
            TokenKind::Flonum(x) => Ok(Datum::Flonum(x)),
            TokenKind::Char(c) => Ok(Datum::Char(c)),
            TokenKind::Str(s) => Ok(Datum::Str(s)),
            TokenKind::Symbol(s) => Ok(Datum::Symbol(s)),
            TokenKind::Quote => self.sugar("quote", span),
            TokenKind::Quasiquote => self.sugar("quasiquote", span),
            TokenKind::Unquote => self.sugar("unquote", span),
            TokenKind::UnquoteSplicing => self.sugar("unquote-splicing", span),
            TokenKind::DatumComment => {
                // Discard the next datum, then read another.
                self.expect_datum("#;", span)?;
                self.expect_datum("#; comment", span)
            }
            TokenKind::LParen => self.read_list(span),
            TokenKind::VecOpen => self.read_vector(span),
            TokenKind::RParen => {
                Err(ReadError { message: "unexpected )".into(), span: Some(span) })
            }
            TokenKind::Dot => Err(ReadError { message: "unexpected .".into(), span: Some(span) }),
        }
    }

    fn sugar(&mut self, name: &str, span: Span) -> Result<Datum, ReadError> {
        let d = self.expect_datum(name, span)?;
        Ok(Datum::list([Datum::symbol(name), d]))
    }

    fn read_list(&mut self, open: Span) -> Result<Datum, ReadError> {
        let mut items = Vec::new();
        loop {
            let Some(tok) = self.next_token()? else {
                return Err(ReadError {
                    message: "end of input: unclosed (".into(),
                    span: Some(open),
                });
            };
            match tok.kind {
                TokenKind::RParen => {
                    let mut d = Datum::Nil;
                    for item in items.into_iter().rev() {
                        d = Datum::cons(item, d);
                    }
                    return Ok(d);
                }
                TokenKind::Dot => {
                    if items.is_empty() {
                        return Err(ReadError {
                            message: "dot at start of list".into(),
                            span: Some(tok.span),
                        });
                    }
                    let tail = self.expect_datum(".", tok.span)?;
                    match self.next_token()? {
                        Some(Token { kind: TokenKind::RParen, .. }) => {
                            let mut d = tail;
                            for item in items.into_iter().rev() {
                                d = Datum::cons(item, d);
                            }
                            return Ok(d);
                        }
                        other => {
                            return Err(ReadError {
                                message: "expected ) after dotted tail".into(),
                                span: other.map(|t| t.span).or(Some(open)),
                            })
                        }
                    }
                }
                _ => {
                    self.unread(tok);
                    let Some(d) = self.read()? else {
                        return Err(ReadError {
                            message: "end of input: unclosed (".into(),
                            span: Some(open),
                        });
                    };
                    items.push(d);
                }
            }
        }
    }

    fn read_vector(&mut self, open: Span) -> Result<Datum, ReadError> {
        let mut items = Vec::new();
        loop {
            let Some(tok) = self.next_token()? else {
                return Err(ReadError {
                    message: "end of input: unclosed #(".into(),
                    span: Some(open),
                });
            };
            if tok.kind == TokenKind::RParen {
                return Ok(Datum::Vector(items));
            }
            self.unread(tok);
            let Some(d) = self.read()? else {
                return Err(ReadError {
                    message: "end of input: unclosed #(".into(),
                    span: Some(open),
                });
            };
            items.push(d);
        }
    }
}

/// Reads a single datum from `src`.
///
/// # Errors
///
/// Fails when `src` contains no datum or is malformed; trailing input is
/// permitted and ignored.
pub fn read_str(src: &str) -> Result<Datum, ReadError> {
    match Reader::new(src).read()? {
        Some(d) => Ok(d),
        None => Err(ReadError { message: "no datum in input".into(), span: None }),
    }
}

/// Reads every datum in `src`.
///
/// # Errors
///
/// Fails on the first malformed datum.
pub fn read_all(src: &str) -> Result<Vec<Datum>, ReadError> {
    let mut r = Reader::new(src);
    let mut out = Vec::new();
    while let Some(d) = r.read()? {
        out.push(d);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_atoms() {
        assert_eq!(read_str("42").unwrap(), Datum::Fixnum(42));
        assert_eq!(read_str("#t").unwrap(), Datum::Bool(true));
        assert_eq!(read_str("foo").unwrap(), Datum::symbol("foo"));
        assert_eq!(read_str("\"hi\"").unwrap(), Datum::Str("hi".into()));
        assert_eq!(read_str("#\\x").unwrap(), Datum::Char('x'));
        assert_eq!(read_str("3.25").unwrap(), Datum::Flonum(3.25));
    }

    #[test]
    fn reads_lists_and_dotted_pairs() {
        assert_eq!(read_str("(1 2)").unwrap(), Datum::list([Datum::Fixnum(1), Datum::Fixnum(2)]));
        assert_eq!(read_str("(1 . 2)").unwrap(), Datum::cons(Datum::Fixnum(1), Datum::Fixnum(2)));
        assert_eq!(
            read_str("(1 2 . 3)").unwrap(),
            Datum::cons(Datum::Fixnum(1), Datum::cons(Datum::Fixnum(2), Datum::Fixnum(3)))
        );
        assert_eq!(read_str("()").unwrap(), Datum::Nil);
    }

    #[test]
    fn reads_vectors() {
        assert_eq!(
            read_str("#(1 a)").unwrap(),
            Datum::Vector(vec![Datum::Fixnum(1), Datum::symbol("a")])
        );
    }

    #[test]
    fn expands_quotation_sugar() {
        assert_eq!(
            read_str("'x").unwrap(),
            Datum::list([Datum::symbol("quote"), Datum::symbol("x")])
        );
        assert_eq!(
            read_str(",@x").unwrap(),
            Datum::list([Datum::symbol("unquote-splicing"), Datum::symbol("x")])
        );
    }

    #[test]
    fn datum_comments_discard() {
        assert_eq!(read_str("#;(1 2) 3").unwrap(), Datum::Fixnum(3));
        assert_eq!(
            read_str("(1 #;2 3)").unwrap(),
            Datum::list([Datum::Fixnum(1), Datum::Fixnum(3)])
        );
    }

    #[test]
    fn read_all_reads_every_datum() {
        let ds = read_all("1 (2) ;c\n3").unwrap();
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn structural_errors() {
        assert!(read_str("(1 2").is_err());
        assert!(read_str(")").is_err());
        assert!(read_str("(. 1)").is_err());
        assert!(read_str("(1 . 2 3)").is_err());
        assert!(read_str("").is_err());
        assert!(read_str("'").is_err());
    }

    #[test]
    fn nested_structures() {
        let d = read_str("(define (f x) (if (< x 2) 1 (* x (f (- x 1)))))").unwrap();
        assert!(d.proper_list().is_some());
        assert_eq!(d.car().unwrap().as_symbol(), Some("define"));
    }
}
