//! The bytecode instruction set and compiled-program containers.
//!
//! The machine is an accumulator machine over the segmented stack: one
//! value register (`acc`), a frame pointer, and frame slots addressed
//! relative to it. Calls follow §3.1 of the paper: the caller stores the
//! return address at a compile-time displacement `disp` above its own
//! frame base, arguments above that, then advances the frame pointer by
//! `disp`; the return point subtracts the same displacement. The
//! displacement is carried inside the return address (the moral equivalent
//! of the paper's frame-size word in the code stream), which is what lets
//! the runtime walk, split, and relocate frames.

use std::fmt;

use oneshot_sexp::Datum;

/// One bytecode instruction.
///
/// `Op` is a fixed-width word: `Copy`, at most 16 bytes (enforced by a
/// compile-time assertion below), so the VM's flat code arena can fetch
/// instructions by value — one bounds-checked load per dispatch, no
/// per-transfer allocation or reference counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `acc := consts[i]`.
    Const(u32),
    /// `acc := fixnum(n)` (small-constant fast path).
    FixInt(i32),
    /// `acc := unspecified`.
    Unspec,
    /// `acc := slot[fp + i]`.
    LocalRef(u16),
    /// `slot[fp + i] := acc`.
    LocalSet(u16),
    /// `acc := closure.free[i]`.
    FreeRef(u16),
    /// `acc := cell(slot[fp + i]).value` (boxed local read).
    CellRefLocal(u16),
    /// `acc := cell(closure.free[i]).value` (boxed capture read).
    CellRefFree(u16),
    /// `cell(slot[fp + i]).value := acc`.
    CellSetLocal(u16),
    /// `cell(closure.free[i]).value := acc`.
    CellSetFree(u16),
    /// `slot[fp + i] := new cell(slot[fp + i])` (box a binding).
    MakeCell(u16),
    /// `acc := globals[i]`; error if undefined.
    GlobalRef(u32),
    /// `globals[i] := acc`; error if undefined.
    GlobalSet(u32),
    /// `globals[i] := acc`, defining it.
    GlobalDef(u32),
    /// `acc := new closure(codes[i])`, capturing per the target's
    /// free-variable spec.
    Closure(u32),
    /// Unconditional relative jump.
    Jump(i32),
    /// Jump if `acc` is `#f`.
    BranchFalse(i32),
    /// Function prologue: arity check (collecting a rest list if variadic),
    /// stack-overflow check for this code object's maximum frame extent,
    /// GC safe point, and engine-timer tick.
    Entry {
        /// Required parameter count.
        required: u16,
        /// Whether extra arguments are collected into a rest list.
        rest: bool,
    },
    /// Call: `slot[fp+disp] := return address; fp += disp; apply(acc, argc)`.
    Call {
        /// Frame displacement (the new frame's base relative to ours).
        disp: u16,
        /// Argument count (arguments sit at `disp+1 ..= disp+argc`).
        argc: u16,
    },
    /// Tail call: move arguments at `disp+1..` down to `1..`, keep the
    /// current frame's return address, `apply(acc, argc)`.
    TailCall {
        /// Where the argument block was built.
        disp: u16,
        /// Argument count.
        argc: u16,
    },
    /// Return `acc` through the return address at `slot[fp]`.
    Return,
    // --- inlined primitives (operand slot × accumulator) ---
    /// `acc := slot[fp+i] + acc`.
    Add(u16),
    /// `acc := slot[fp+i] - acc`.
    Sub(u16),
    /// `acc := slot[fp+i] * acc`.
    Mul(u16),
    /// `acc := slot[fp+i] < acc`.
    Lt(u16),
    /// `acc := slot[fp+i] <= acc`.
    Le(u16),
    /// `acc := slot[fp+i] > acc`.
    Gt(u16),
    /// `acc := slot[fp+i] >= acc`.
    Ge(u16),
    /// `acc := slot[fp+i] = acc` (numeric).
    NumEq(u16),
    /// `acc := cons(slot[fp+i], acc)`.
    Cons(u16),
    /// `acc := (eq? slot[fp+i] acc)` (also `eqv?` — values are immediates
    /// or references).
    Eq(u16),
    /// `acc := car(acc)`.
    Car,
    /// `acc := cdr(acc)`.
    Cdr,
    /// `acc := (null? acc)`.
    NullP,
    /// `acc := (pair? acc)`.
    PairP,
    /// `acc := (not acc)`.
    Not,
    /// `acc := (zero? acc)`.
    ZeroP,
    /// `acc := acc + 1`.
    Add1,
    /// `acc := acc - 1`.
    Sub1,
    /// `acc := vector-ref(slot[fp+i], acc)`.
    VecRef(u16),
    /// `vector-set!(slot[fp+v], slot[fp+i], acc); acc := unspecified`.
    VecSet {
        /// Slot holding the vector.
        v: u16,
        /// Slot holding the index.
        i: u16,
    },
    // --- fused superinstructions (see `peephole`) ---
    /// `Lt(i); BranchFalse(off)`: `acc := slot[fp+i] < acc`, branch on `#f`.
    BrLt {
        /// Operand slot.
        i: u16,
        /// Relative branch offset (taken when the comparison is false).
        off: i32,
    },
    /// `Le(i); BranchFalse(off)` fused.
    BrLe {
        /// Operand slot.
        i: u16,
        /// Relative branch offset.
        off: i32,
    },
    /// `Gt(i); BranchFalse(off)` fused.
    BrGt {
        /// Operand slot.
        i: u16,
        /// Relative branch offset.
        off: i32,
    },
    /// `Ge(i); BranchFalse(off)` fused.
    BrGe {
        /// Operand slot.
        i: u16,
        /// Relative branch offset.
        off: i32,
    },
    /// `NumEq(i); BranchFalse(off)` fused.
    BrNumEq {
        /// Operand slot.
        i: u16,
        /// Relative branch offset.
        off: i32,
    },
    /// `Eq(i); BranchFalse(off)` fused.
    BrEq {
        /// Operand slot.
        i: u16,
        /// Relative branch offset.
        off: i32,
    },
    /// `ZeroP; BranchFalse(off)` fused.
    BrZeroP(i32),
    /// `NullP; BranchFalse(off)` fused.
    BrNullP(i32),
    /// `LocalRef(i); Return` fused: return `slot[fp+i]`.
    ReturnLocal(u16),
    /// `FixInt(n); Add(i)` fused: `acc := slot[fp+i] + n`.
    AddImm {
        /// Operand slot.
        i: u16,
        /// Immediate addend.
        n: i32,
    },
    /// `FixInt(n); Sub(i)` fused: `acc := slot[fp+i] - n`.
    SubImm {
        /// Operand slot.
        i: u16,
        /// Immediate subtrahend.
        n: i32,
    },
    /// `LocalRef(src); LocalSet(dst)` fused:
    /// `acc := slot[fp+src]; slot[fp+dst] := acc` — the argument-shuffle
    /// move that dominates call-heavy code.
    Move {
        /// Source slot.
        src: u16,
        /// Destination slot.
        dst: u16,
    },
    /// `Not; BranchFalse(off)` fused: `acc := (not acc)`, branch when the
    /// original accumulator was true (i.e. when the negation is `#f`).
    BrTrue(i32),
    /// `FixInt(n); BrLt { i, off }` fused (second fusion generation):
    /// `acc := slot[fp+i] < n`, branch when false — the
    /// compare-against-constant guard of counting recursion.
    BrLtImm {
        /// Operand slot.
        i: u16,
        /// Immediate right-hand side.
        n: i32,
        /// Relative branch offset.
        off: i32,
    },
    /// `GlobalRef(g); Call { disp, argc }` fused: call the procedure in
    /// `globals[g]` — the dominant call sequence in recursive code.
    CallGlobal {
        /// Global index of the callee.
        g: u32,
        /// Frame displacement.
        disp: u16,
        /// Argument count.
        argc: u16,
    },
    /// `GlobalRef(g); TailCall { disp, argc }` fused.
    TailCallGlobal {
        /// Global index of the callee.
        g: u32,
        /// Where the argument block was built.
        disp: u16,
        /// Argument count.
        argc: u16,
    },
}

// The dispatch loop fetches instructions by value from the flat arena;
// keep them at most two machine words wide.
const _: () = assert!(std::mem::size_of::<Op>() <= 16, "Op must stay within 16 bytes");

/// Mnemonics indexed by [`Op::kind_index`]; `MNEMONICS[op.kind_index()]`
/// names any instruction.
pub const MNEMONICS: [&str; Op::KIND_COUNT] = [
    "const",
    "fixint",
    "unspec",
    "local-ref",
    "local-set",
    "free-ref",
    "cell-ref-local",
    "cell-ref-free",
    "cell-set-local",
    "cell-set-free",
    "make-cell",
    "global-ref",
    "global-set",
    "global-def",
    "closure",
    "jump",
    "branch-false",
    "entry",
    "call",
    "tail-call",
    "return",
    "add",
    "sub",
    "mul",
    "lt",
    "le",
    "gt",
    "ge",
    "num-eq",
    "cons",
    "eq",
    "car",
    "cdr",
    "null?",
    "pair?",
    "not",
    "zero?",
    "add1",
    "sub1",
    "vec-ref",
    "vec-set",
    "br-lt",
    "br-le",
    "br-gt",
    "br-ge",
    "br-num-eq",
    "br-eq",
    "br-zero?",
    "br-null?",
    "return-local",
    "add-imm",
    "sub-imm",
    "move",
    "br-true",
    "br-lt-imm",
    "call-global",
    "tail-call-global",
];

impl Op {
    /// Number of instruction kinds — the length of a per-opcode histogram.
    pub const KIND_COUNT: usize = 57;

    /// A dense index identifying the instruction kind (operands ignored),
    /// in `0..Op::KIND_COUNT`. Histograms index by this; [`MNEMONICS`]
    /// names each index.
    pub fn kind_index(&self) -> usize {
        match self {
            Op::Const(_) => 0,
            Op::FixInt(_) => 1,
            Op::Unspec => 2,
            Op::LocalRef(_) => 3,
            Op::LocalSet(_) => 4,
            Op::FreeRef(_) => 5,
            Op::CellRefLocal(_) => 6,
            Op::CellRefFree(_) => 7,
            Op::CellSetLocal(_) => 8,
            Op::CellSetFree(_) => 9,
            Op::MakeCell(_) => 10,
            Op::GlobalRef(_) => 11,
            Op::GlobalSet(_) => 12,
            Op::GlobalDef(_) => 13,
            Op::Closure(_) => 14,
            Op::Jump(_) => 15,
            Op::BranchFalse(_) => 16,
            Op::Entry { .. } => 17,
            Op::Call { .. } => 18,
            Op::TailCall { .. } => 19,
            Op::Return => 20,
            Op::Add(_) => 21,
            Op::Sub(_) => 22,
            Op::Mul(_) => 23,
            Op::Lt(_) => 24,
            Op::Le(_) => 25,
            Op::Gt(_) => 26,
            Op::Ge(_) => 27,
            Op::NumEq(_) => 28,
            Op::Cons(_) => 29,
            Op::Eq(_) => 30,
            Op::Car => 31,
            Op::Cdr => 32,
            Op::NullP => 33,
            Op::PairP => 34,
            Op::Not => 35,
            Op::ZeroP => 36,
            Op::Add1 => 37,
            Op::Sub1 => 38,
            Op::VecRef(_) => 39,
            Op::VecSet { .. } => 40,
            Op::BrLt { .. } => 41,
            Op::BrLe { .. } => 42,
            Op::BrGt { .. } => 43,
            Op::BrGe { .. } => 44,
            Op::BrNumEq { .. } => 45,
            Op::BrEq { .. } => 46,
            Op::BrZeroP(_) => 47,
            Op::BrNullP(_) => 48,
            Op::ReturnLocal(_) => 49,
            Op::AddImm { .. } => 50,
            Op::SubImm { .. } => 51,
            Op::Move { .. } => 52,
            Op::BrTrue(_) => 53,
            Op::BrLtImm { .. } => 54,
            Op::CallGlobal { .. } => 55,
            Op::TailCallGlobal { .. } => 56,
        }
    }

    /// The mnemonic for this instruction's kind.
    pub fn mnemonic(&self) -> &'static str {
        MNEMONICS[self.kind_index()]
    }

    /// The relative branch offset carried by this instruction, if it is a
    /// (possibly fused) jump or branch. Offsets are relative to the *next*
    /// instruction.
    pub fn branch_offset(&self) -> Option<i32> {
        match *self {
            Op::Jump(off)
            | Op::BranchFalse(off)
            | Op::BrZeroP(off)
            | Op::BrNullP(off)
            | Op::BrTrue(off)
            | Op::BrLt { off, .. }
            | Op::BrLe { off, .. }
            | Op::BrGt { off, .. }
            | Op::BrGe { off, .. }
            | Op::BrNumEq { off, .. }
            | Op::BrEq { off, .. }
            | Op::BrLtImm { off, .. } => Some(off),
            _ => None,
        }
    }

    /// Replaces the relative branch offset of a jump or branch.
    ///
    /// # Panics
    ///
    /// Panics if the instruction carries no branch offset.
    pub fn set_branch_offset(&mut self, new: i32) {
        match self {
            Op::Jump(off)
            | Op::BranchFalse(off)
            | Op::BrZeroP(off)
            | Op::BrNullP(off)
            | Op::BrTrue(off)
            | Op::BrLt { off, .. }
            | Op::BrLe { off, .. }
            | Op::BrGt { off, .. }
            | Op::BrGe { off, .. }
            | Op::BrNumEq { off, .. }
            | Op::BrEq { off, .. }
            | Op::BrLtImm { off, .. } => *off = new,
            other => panic!("set_branch_offset on non-branch {other:?}"),
        }
    }
}

/// Where a created closure's captured value comes from, relative to the
/// *creating* context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeSrc {
    /// A slot in the creator's frame.
    Local(u16),
    /// A capture of the creator's own closure.
    Free(u16),
}

/// A compiled procedure body.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeObject {
    /// Diagnostic name.
    pub name: String,
    /// Required parameter count.
    pub required: u16,
    /// Whether extra arguments form a rest list.
    pub rest: bool,
    /// Maximum frame extent in slots (arguments, locals, temporaries, and
    /// outgoing call frames) — the overflow check at [`Op::Entry`] reserves
    /// this much.
    pub frame_slots: u16,
    /// Instructions; index 0 is always [`Op::Entry`].
    pub ops: Vec<Op>,
    /// Constant pool (lowered to runtime values at load time).
    pub consts: Vec<Datum>,
    /// Capture spec: how the creator builds this code's closure.
    pub free_spec: Vec<FreeSrc>,
}

impl fmt::Display for CodeObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "code {:?} required={} rest={} frame={} free={}",
            self.name,
            self.required,
            self.rest,
            self.frame_slots,
            self.free_spec.len()
        )?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "  {i:4}: {op:?}")?;
        }
        Ok(())
    }
}

/// A compiled program: code objects plus the global names they reference.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// All code objects; nested lambdas refer to others by index.
    pub codes: Vec<CodeObject>,
    /// Index of the toplevel thunk (zero-argument entry point).
    pub entry: u32,
    /// Global-variable names; `Op::GlobalRef(i)` etc. index this table and
    /// are relinked against the VM's global table at load time.
    pub globals: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every instruction kind, in `kind_index` order.
    fn one_of_each() -> Vec<Op> {
        vec![
            Op::Const(0),
            Op::FixInt(0),
            Op::Unspec,
            Op::LocalRef(0),
            Op::LocalSet(0),
            Op::FreeRef(0),
            Op::CellRefLocal(0),
            Op::CellRefFree(0),
            Op::CellSetLocal(0),
            Op::CellSetFree(0),
            Op::MakeCell(0),
            Op::GlobalRef(0),
            Op::GlobalSet(0),
            Op::GlobalDef(0),
            Op::Closure(0),
            Op::Jump(0),
            Op::BranchFalse(0),
            Op::Entry { required: 0, rest: false },
            Op::Call { disp: 0, argc: 0 },
            Op::TailCall { disp: 0, argc: 0 },
            Op::Return,
            Op::Add(0),
            Op::Sub(0),
            Op::Mul(0),
            Op::Lt(0),
            Op::Le(0),
            Op::Gt(0),
            Op::Ge(0),
            Op::NumEq(0),
            Op::Cons(0),
            Op::Eq(0),
            Op::Car,
            Op::Cdr,
            Op::NullP,
            Op::PairP,
            Op::Not,
            Op::ZeroP,
            Op::Add1,
            Op::Sub1,
            Op::VecRef(0),
            Op::VecSet { v: 0, i: 0 },
            Op::BrLt { i: 0, off: 0 },
            Op::BrLe { i: 0, off: 0 },
            Op::BrGt { i: 0, off: 0 },
            Op::BrGe { i: 0, off: 0 },
            Op::BrNumEq { i: 0, off: 0 },
            Op::BrEq { i: 0, off: 0 },
            Op::BrZeroP(0),
            Op::BrNullP(0),
            Op::ReturnLocal(0),
            Op::AddImm { i: 0, n: 0 },
            Op::SubImm { i: 0, n: 0 },
            Op::Move { src: 0, dst: 0 },
            Op::BrTrue(0),
            Op::BrLtImm { i: 0, n: 0, off: 0 },
            Op::CallGlobal { g: 0, disp: 0, argc: 0 },
            Op::TailCallGlobal { g: 0, disp: 0, argc: 0 },
        ]
    }

    #[test]
    fn kind_indices_are_dense_and_distinct() {
        let all = one_of_each();
        assert_eq!(all.len(), Op::KIND_COUNT, "one_of_each must cover every variant");
        let mut seen = [false; Op::KIND_COUNT];
        for op in &all {
            let k = op.kind_index();
            assert!(k < Op::KIND_COUNT, "{op:?} index {k} out of range");
            assert!(!seen[k], "duplicate kind_index {k} for {op:?}");
            seen[k] = true;
        }
        assert!(seen.iter().all(|&b| b), "kind indices must be dense");
    }

    #[test]
    fn mnemonics_are_exhaustive_and_unique() {
        for op in one_of_each() {
            assert!(!op.mnemonic().is_empty(), "{op:?}");
        }
        let mut names: Vec<&str> = MNEMONICS.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Op::KIND_COUNT, "mnemonics must be unique");
    }

    #[test]
    fn branch_offsets_round_trip() {
        for mut op in one_of_each() {
            if let Some(off) = op.branch_offset() {
                assert_eq!(off, 0);
                op.set_branch_offset(7);
                assert_eq!(op.branch_offset(), Some(7), "{op:?}");
            }
        }
    }

    #[test]
    fn display_lists_ops() {
        let c = CodeObject {
            name: "t".into(),
            required: 0,
            rest: false,
            frame_slots: 4,
            ops: vec![Op::Entry { required: 0, rest: false }, Op::FixInt(1), Op::Return],
            consts: vec![],
            free_spec: vec![],
        };
        let text = c.to_string();
        assert!(text.contains("FixInt(1)"));
        assert!(text.contains("frame=4"));
    }
}
