//! Continuation-passing-style conversion.
//!
//! Converts an expanded program so that every user-procedure call passes an
//! explicit continuation closure as its first argument and every call is a
//! tail call. Control context then lives entirely in heap-allocated
//! closures — the representation Appel and MacQueen's SML/NJ uses and the
//! baseline the paper compares against (§4's CPS thread system, §5's
//! Appel–Shao closure-overhead discussion).
//!
//! Direct Rust builtins (per [`crate::builtins::cps_direct`]) are called
//! without a continuation; the control operators (`call/cc`, `apply`,
//! `values`, ...) are redefined by the VM's CPS prelude in hand-written CPS
//! form.
//!
//! The converter is the standard one-pass higher-order transform:
//! continuations are either atoms (variables) duplicated freely, or Rust
//! closures inlined at their single use; `if` with a non-atomic
//! continuation reifies it as a join-point lambda — one of the closure
//! allocations the direct-style compiler never performs.

use std::rc::Rc;

use oneshot_sexp::Datum;

use crate::ast::{Expr, Lambda, Program, VarId};
use crate::builtins::cps_direct;

/// Converts `program` to continuation-passing style.
///
/// The toplevel forms are chained through one continuation (a single
/// `Seq`), so a continuation captured in one form resumes the rest of the
/// program exactly as it does under the direct pipeline, where all forms
/// run inside one toplevel thunk.
pub fn cps_convert(program: Program) -> Program {
    let mut c = Cps { next: program.var_count };
    let whole = match program.forms.len() {
        0 => Expr::Unspecified,
        1 => program.forms.into_iter().next().expect("one form"),
        _ => Expr::Seq(program.forms),
    };
    let converted = c.cps(whole, K::Ctx(Box::new(|_, a| a)));
    Program { forms: vec![converted], var_count: c.next, defined_globals: program.defined_globals }
}

struct Cps {
    next: u32,
}

type Ctx = Box<dyn FnOnce(&mut Cps, Expr) -> Expr>;
type ListCtx = Box<dyn FnOnce(&mut Cps, Vec<Expr>) -> Expr>;

/// A meta-continuation: what to do with the (atomic) value of the
/// expression being converted.
enum K {
    /// An atomic expression denoting a one-argument continuation
    /// procedure; safe to duplicate.
    Atom(Expr),
    /// A Rust-side context, inlined at its single use site.
    Ctx(Ctx),
}

impl K {
    fn apply(self, c: &mut Cps, v: Expr) -> Expr {
        match self {
            K::Atom(k) => Expr::App(Box::new(k), vec![v]),
            K::Ctx(f) => f(c, v),
        }
    }

    /// An atomic expression for this continuation (reifying contexts as
    /// join-point lambdas).
    fn reify(self, c: &mut Cps) -> Expr {
        match self {
            K::Atom(k) => k,
            K::Ctx(f) => {
                let x = c.fresh();
                Expr::Lambda(Rc::new(Lambda {
                    params: vec![x],
                    rest: None,
                    body: f(c, Expr::Ref(x)),
                    name: Some("%k".into()),
                }))
            }
        }
    }
}

/// Is `e` free of control effects (evaluable without calls)?
fn atomic(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Quote(_) | Expr::Unspecified | Expr::Ref(_) | Expr::GlobalRef(_) | Expr::Lambda(_)
    )
}

impl Cps {
    fn fresh(&mut self) -> VarId {
        let id = VarId(self.next);
        self.next += 1;
        id
    }

    fn convert_lambda(&mut self, l: &Lambda) -> Expr {
        let kv = self.fresh();
        let mut params = Vec::with_capacity(l.params.len() + 1);
        params.push(kv);
        params.extend(&l.params);
        let body = self.cps(l.body.clone(), K::Atom(Expr::Ref(kv)));
        Expr::Lambda(Rc::new(Lambda { params, rest: l.rest, body, name: l.name.clone() }))
    }

    fn convert_atom(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Lambda(l) => self.convert_lambda(&l),
            // A direct builtin escaping as a first-class value must obey
            // the CPS calling convention at its eventual call sites:
            // eta-wrap it as (lambda (k . args) (%apply-args k <f> (list args))).
            Expr::GlobalRef(name) if cps_direct(&name) => self.eta_wrap(&name),
            other => other,
        }
    }

    fn eta_wrap(&mut self, name: &Rc<str>) -> Expr {
        let kv = self.fresh();
        let rv = self.fresh();
        let spec = Expr::App(
            Box::new(Expr::GlobalRef(Rc::from("cons"))),
            vec![Expr::Ref(rv), Expr::Quote(Datum::Nil)],
        );
        let body = Expr::App(
            Box::new(Expr::GlobalRef(Rc::from("%apply-args"))),
            vec![Expr::Ref(kv), Expr::GlobalRef(name.clone()), spec],
        );
        Expr::Lambda(Rc::new(Lambda {
            params: vec![kv],
            rest: Some(rv),
            body,
            name: Some(format!("%cps:{name}")),
        }))
    }

    /// Converts `e`, delivering its (atomic) value to `f`.
    fn atomize(&mut self, e: Expr, f: Ctx) -> Expr {
        if atomic(&e) {
            let a = self.convert_atom(e);
            f(self, a)
        } else {
            self.cps(e, K::Ctx(f))
        }
    }

    /// Converts a list of expressions left to right, delivering the atomic
    /// values to `f`.
    fn atomize_list(&mut self, mut es: Vec<Expr>, mut acc: Vec<Expr>, f: ListCtx) -> Expr {
        if es.is_empty() {
            return f(self, acc);
        }
        let head = es.remove(0);
        self.atomize(
            head,
            Box::new(move |c, a| {
                acc.push(a);
                c.atomize_list(es, acc, f)
            }),
        )
    }

    #[allow(clippy::too_many_lines)]
    fn cps(&mut self, e: Expr, k: K) -> Expr {
        match e {
            Expr::Quote(_)
            | Expr::Unspecified
            | Expr::Ref(_)
            | Expr::GlobalRef(_)
            | Expr::Lambda(_) => {
                let a = self.convert_atom(e);
                k.apply(self, a)
            }
            Expr::Set(v, rhs) => self.atomize(
                *rhs,
                Box::new(move |c, a| {
                    let assign = Expr::Set(v, Box::new(a));
                    let rest = k.apply(c, Expr::Unspecified);
                    Expr::Seq(vec![assign, rest])
                }),
            ),
            Expr::GlobalSet(name, rhs) => self.atomize(
                *rhs,
                Box::new(move |c, a| {
                    let assign = Expr::GlobalSet(name, Box::new(a));
                    let rest = k.apply(c, Expr::Unspecified);
                    Expr::Seq(vec![assign, rest])
                }),
            ),
            Expr::GlobalDef(name, rhs) => self.atomize(
                *rhs,
                Box::new(move |c, a| {
                    let assign = Expr::GlobalDef(name, Box::new(a));
                    let rest = k.apply(c, Expr::Unspecified);
                    Expr::Seq(vec![assign, rest])
                }),
            ),
            Expr::If(cond, t, f) => {
                // Avoid duplicating non-atomic continuations: bind a join
                // point.
                match k {
                    K::Atom(ka) => {
                        let ka2 = ka.clone();
                        self.atomize(
                            *cond,
                            Box::new(move |c, a| {
                                let tt = c.cps(*t, K::Atom(ka));
                                let ff = c.cps(*f, K::Atom(ka2));
                                Expr::If(Box::new(a), Box::new(tt), Box::new(ff))
                            }),
                        )
                    }
                    ctx @ K::Ctx(_) => {
                        let j = self.fresh();
                        let join = ctx.reify(self);
                        let body = self.cps(Expr::If(cond, t, f), K::Atom(Expr::Ref(j)));
                        Expr::Let(vec![(j, join)], Box::new(body))
                    }
                }
            }
            Expr::Seq(mut es) => {
                if es.is_empty() {
                    return k.apply(self, Expr::Unspecified);
                }
                let head = es.remove(0);
                if es.is_empty() {
                    return self.cps(head, k);
                }
                self.atomize(head, Box::new(move |c, _discard| c.cps(Expr::Seq(es), k)))
            }
            Expr::Let(mut bindings, body) => {
                if bindings.is_empty() {
                    return self.cps(*body, k);
                }
                let (v, init) = bindings.remove(0);
                self.atomize(
                    init,
                    Box::new(move |c, a| {
                        let rest = c.cps(Expr::Let(bindings, body), k);
                        Expr::Let(vec![(v, a)], Box::new(rest))
                    }),
                )
            }
            Expr::App(f, args) => {
                // Direct builtins stay direct, but their call is *not* an
                // atom: it must be evaluated at this point in the program,
                // so a context continuation receives it through a binding
                // (otherwise an escaping continuation later in the
                // argument list could reorder or skip its evaluation).
                if let Expr::GlobalRef(name) = &*f {
                    if cps_direct(name) {
                        let name = name.clone();
                        return self.atomize_list(
                            args,
                            Vec::new(),
                            Box::new(move |c, atoms| {
                                let call = Expr::App(Box::new(Expr::GlobalRef(name)), atoms);
                                match k {
                                    K::Atom(_) => k.apply(c, call),
                                    K::Ctx(fk) => {
                                        let t = c.fresh();
                                        let body = fk(c, Expr::Ref(t));
                                        Expr::Let(vec![(t, call)], Box::new(body))
                                    }
                                }
                            }),
                        );
                    }
                }
                // General call: (f k a...) in tail position.
                let f = *f;
                self.atomize(
                    f,
                    Box::new(move |c, af| {
                        c.atomize_list(
                            args,
                            Vec::new(),
                            Box::new(move |c, atoms| {
                                let kr = k.reify(c);
                                let mut full = Vec::with_capacity(atoms.len() + 1);
                                full.push(kr);
                                full.extend(atoms);
                                Expr::App(Box::new(af), full)
                            }),
                        )
                    }),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::expand_program;
    use oneshot_sexp::read_all;

    fn convert(src: &str) -> Program {
        cps_convert(expand_program(&read_all(src).unwrap()).unwrap())
    }

    /// The converted program is one chained form; digs out the first
    /// `GlobalDef`'s value.
    fn first_define(p: &Program) -> &Expr {
        fn find(e: &Expr) -> Option<&Expr> {
            match e {
                Expr::GlobalDef(_, v) => Some(v),
                Expr::Seq(es) => es.iter().find_map(find),
                Expr::Let(bs, body) => bs.iter().find_map(|(_, i)| find(i)).or_else(|| find(body)),
                Expr::App(f, args) => find(f).or_else(|| args.iter().find_map(find)),
                Expr::Lambda(l) => find(&l.body),
                Expr::If(a, b, c) => find(a).or_else(|| find(b)).or_else(|| find(c)),
                _ => None,
            }
        }
        p.forms.iter().find_map(find).expect("a define")
    }

    /// Checks the CPS invariant: every non-builtin application is in tail
    /// position.
    fn check_tail_only(e: &Expr, tail: bool) {
        match e {
            Expr::App(f, args) => {
                let direct = matches!(&**f, Expr::GlobalRef(n) if cps_direct(n));
                let lambda_app = matches!(&**f, Expr::Lambda(_));
                assert!(direct || lambda_app || tail, "non-tail general call in CPS output: {e:?}");
                if lambda_app {
                    if let Expr::Lambda(l) = &**f {
                        check_tail_only(&l.body, tail);
                    }
                }
                for a in args {
                    check_tail_only(a, false);
                }
            }
            Expr::Lambda(l) => check_tail_only(&l.body, true),
            Expr::If(c, t, f) => {
                check_tail_only(c, false);
                check_tail_only(t, tail);
                check_tail_only(f, tail);
            }
            Expr::Let(bs, body) => {
                for (_, init) in bs {
                    check_tail_only(init, false);
                }
                check_tail_only(body, tail);
            }
            Expr::Seq(es) => {
                let n = es.len();
                for (i, x) in es.iter().enumerate() {
                    check_tail_only(x, tail && i + 1 == n);
                }
            }
            Expr::Set(_, rhs) | Expr::GlobalSet(_, rhs) | Expr::GlobalDef(_, rhs) => {
                check_tail_only(rhs, false);
            }
            Expr::Quote(_) | Expr::Unspecified | Expr::Ref(_) | Expr::GlobalRef(_) => {}
        }
    }

    #[test]
    fn lambdas_gain_a_continuation_parameter() {
        let p = convert("(define (f x) x)");
        let Expr::Lambda(l) = first_define(&p) else { panic!() };
        assert_eq!(l.params.len(), 2, "k plus x");
        // Body: (k x)
        let Expr::App(f, args) = &l.body else { panic!("{:?}", l.body) };
        assert_eq!(**f, Expr::Ref(l.params[0]));
        assert_eq!(args[0], Expr::Ref(l.params[1]));
    }

    #[test]
    fn all_general_calls_become_tail_calls() {
        let p = convert("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)");
        for form in &p.forms {
            check_tail_only(form, true);
        }
    }

    #[test]
    fn builtins_stay_direct() {
        let p = convert("(define (f x) (cons x 1))");
        let Expr::Lambda(l) = first_define(&p) else { panic!() };
        // Body: (k (cons x 1)) — cons call stays direct inside.
        let Expr::App(_, args) = &l.body else { panic!() };
        assert!(
            matches!(&args[0], Expr::App(f, _) if matches!(&**f, Expr::GlobalRef(n) if &**n == "cons"))
        );
    }

    #[test]
    fn control_operators_are_converted() {
        let p = convert("(define (f g) (call/cc g))");
        let Expr::Lambda(l) = first_define(&p) else { panic!() };
        // call/cc gets the continuation as an explicit argument.
        let Expr::App(f, args) = &l.body else { panic!("{:?}", l.body) };
        assert!(matches!(&**f, Expr::GlobalRef(n) if &**n == "call/cc"));
        assert_eq!(args.len(), 2, "continuation + g");
    }

    #[test]
    fn if_with_context_gets_join_point() {
        let p = convert("(define (f g x) (+ (if x (g 1) 2) 5))");
        for form in &p.forms {
            check_tail_only(form, true);
        }
        // There must be a join-point lambda somewhere.
        fn has_join(e: &Expr) -> bool {
            match e {
                Expr::Lambda(l) => l.name.as_deref() == Some("%k") || has_join(&l.body),
                Expr::Let(bs, body) => bs.iter().any(|(_, i)| has_join(i)) || has_join(body),
                Expr::If(a, b, c) => has_join(a) || has_join(b) || has_join(c),
                Expr::App(f, args) => has_join(f) || args.iter().any(has_join),
                Expr::Seq(es) => es.iter().any(has_join),
                Expr::Set(_, r) | Expr::GlobalSet(_, r) | Expr::GlobalDef(_, r) => has_join(r),
                _ => false,
            }
        }
        assert!(p.forms.iter().any(has_join), "join point expected");
    }

    #[test]
    fn seq_discards_intermediate_values() {
        let p = convert("(define (f g) (g 1) (g 2))");
        for form in &p.forms {
            check_tail_only(form, true);
        }
    }

    #[test]
    fn fresh_vars_do_not_collide() {
        let p = convert("(define (f x) (f (f x)))");
        assert!(p.var_count > 2);
    }
}
