//! The expanded core AST.
//!
//! The expander lowers every derived form (`let`, `cond`, `case`, `do`,
//! quasiquote, ...) into this small language. Variables are alpha-renamed
//! to unique [`VarId`]s during expansion, so later passes never deal with
//! shadowing.

use std::rc::Rc;

use oneshot_sexp::Datum;

/// A unique lexical variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index (unique within one expansion).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A core expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant datum.
    Quote(Datum),
    /// The unspecified value (result of `set!`, one-armed `if`, ...).
    Unspecified,
    /// A lexical variable reference.
    Ref(VarId),
    /// A global (toplevel) variable reference, by name.
    GlobalRef(Rc<str>),
    /// Lexical assignment.
    Set(VarId, Box<Expr>),
    /// Global assignment.
    GlobalSet(Rc<str>, Box<Expr>),
    /// Global definition (toplevel `define`).
    GlobalDef(Rc<str>, Box<Expr>),
    /// Two- or three-armed conditional (one-armed `if` gets an unspecified
    /// else branch during expansion).
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A procedure.
    Lambda(Rc<Lambda>),
    /// Parallel bindings evaluated left to right (from `let` and direct
    /// lambda application); compiled without closure allocation.
    Let(Vec<(VarId, Expr)>, Box<Expr>),
    /// Sequencing; the last expression is in tail position.
    Seq(Vec<Expr>),
    /// Procedure application.
    App(Box<Expr>, Vec<Expr>),
}

/// A lambda expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// Required parameters.
    pub params: Vec<VarId>,
    /// Rest parameter, for variadic procedures.
    pub rest: Option<VarId>,
    /// The body (internal defines already lowered).
    pub body: Expr,
    /// A name for diagnostics, when one is known.
    pub name: Option<String>,
}

/// An expanded program: a sequence of toplevel expressions plus variable
/// metadata.
#[derive(Debug, Clone)]
pub struct Program {
    /// Toplevel forms in order.
    pub forms: Vec<Expr>,
    /// Number of [`VarId`]s allocated (ids are `0..var_count`).
    pub var_count: u32,
    /// Names of globals defined by this program (used to decide which
    /// primitives are safe to inline).
    pub defined_globals: Vec<Rc<str>>,
}

impl Expr {
    /// An unspecified-value constant.
    pub fn unspecified() -> Expr {
        Expr::Unspecified
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> Expr {
        Expr::Quote(Datum::Bool(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_constants() {
        assert_eq!(Expr::bool(true), Expr::Quote(Datum::Bool(true)));
        assert!(matches!(Expr::unspecified(), Expr::Unspecified));
    }
}
