//! The canonical builtin-procedure name list.
//!
//! This is the single source of truth shared by the VM (which registers a
//! Rust implementation for every name here, in this order) and the CPS
//! converter (which must know which globals are direct Rust builtins and
//! which are control operators that get continuation-passing definitions in
//! the CPS prelude).

/// Every builtin name, in registration order. `Value::builtin(i)` refers to
/// `BUILTIN_NAMES[i]`.
pub const BUILTIN_NAMES: &[&str] = &[
    // numbers
    "+",
    "-",
    "*",
    "/",
    "quotient",
    "remainder",
    "modulo",
    "abs",
    "min",
    "max",
    "gcd",
    "lcm",
    "expt",
    "sqrt",
    "floor",
    "ceiling",
    "truncate",
    "round",
    "exact->inexact",
    "inexact->exact",
    "number?",
    "integer?",
    "exact?",
    "inexact?",
    "zero?",
    "positive?",
    "negative?",
    "odd?",
    "even?",
    "=",
    "<",
    ">",
    "<=",
    ">=",
    "number->string",
    "string->number",
    // predicates
    "eq?",
    "eqv?",
    "equal?",
    "not",
    "boolean?",
    "procedure?",
    "symbol?",
    "string?",
    "char?",
    "vector?",
    "pair?",
    "null?",
    // pairs and lists
    "cons",
    "car",
    "cdr",
    "set-car!",
    "set-cdr!",
    "list",
    "length",
    "append",
    "reverse",
    "list-tail",
    "list-ref",
    "memq",
    "memv",
    "assq",
    "assv",
    "list?",
    // symbols
    "symbol->string",
    "string->symbol",
    "gensym",
    // characters
    "char->integer",
    "integer->char",
    "char=?",
    "char<?",
    "char>?",
    "char<=?",
    "char>=?",
    "char-upcase",
    "char-downcase",
    "char-alphabetic?",
    "char-numeric?",
    "char-whitespace?",
    "char-upper-case?",
    "char-lower-case?",
    // strings
    "make-string",
    "string",
    "string-length",
    "string-ref",
    "string-set!",
    "string=?",
    "string<?",
    "string>?",
    "string<=?",
    "string>=?",
    "substring",
    "string-append",
    "string->list",
    "list->string",
    "string-copy",
    "string-fill!",
    // vectors
    "make-vector",
    "vector",
    "vector-length",
    "vector-ref",
    "vector-set!",
    "vector->list",
    "list->vector",
    "vector-fill!",
    // control
    "apply",
    "call/cc",
    "call-with-current-continuation",
    "call/1cc",
    "dynamic-wind",
    "values",
    "call-with-values",
    // i/o
    "display",
    "write",
    "newline",
    "write-char",
    // system
    "error",
    "void",
    "gc",
    "set-timer!",
    "timer-interrupt-handler!",
    "vm-stats",
    "eval",
    "backtrace",
    "sleep-ms",
    "debug-panic!",
    "now-us",
    // nonblocking loopback TCP; the would-block retry loops live in the
    // threads crate's io.scm, where they suspend the running green thread
    "%tcp-listen",
    "%tcp-local-port",
    "%tcp-accept",
    "%tcp-connect",
    "%tcp-read",
    "%tcp-write",
    "%tcp-close",
    "%net-live",
    "%conn-take",
    // internal helpers (used by the CPS prelude)
    "%apply-args",
    // internal helpers (used by the condition-system prelude)
    "%push-handler!",
    "%pop-handler!",
    "%top-handler",
    "%have-handler?",
    "%note-raise!",
    "%uncaught",
];

/// Control operators that cannot be called direct-style from CPS code;
/// the CPS prelude redefines them (their builtin versions remain reachable
/// as `%cps:<name>` aliases registered by the VM).
pub const CPS_CONTROL: &[&str] = &[
    "apply",
    "call/cc",
    "call-with-current-continuation",
    "call/1cc",
    "dynamic-wind",
    "values",
    "call-with-values",
];

/// Whether a global named `name` may be called direct-style (no
/// continuation argument) from CPS-converted code.
pub fn cps_direct(name: &str) -> bool {
    BUILTIN_NAMES.contains(&name) && !CPS_CONTROL.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_duplicate_names() {
        let mut seen = std::collections::HashSet::new();
        for n in BUILTIN_NAMES {
            assert!(seen.insert(n), "duplicate builtin {n}");
        }
    }

    #[test]
    fn control_ops_are_builtins_but_not_direct() {
        for n in CPS_CONTROL {
            assert!(BUILTIN_NAMES.contains(n), "{n} missing from BUILTIN_NAMES");
            assert!(!cps_direct(n));
        }
        assert!(cps_direct("cons"));
        assert!(!cps_direct("map"), "prelude procedures are not direct");
    }
}
