//! Scheme compilers targeting the oneshot bytecode VM.
//!
//! Two pipelines share one front end (reader data → expanded core AST) and
//! one back end (AST → bytecode):
//!
//! * the **direct-style** compiler, which uses the stack discipline of
//!   §3.1 of the paper — every call allocates a frame at a compile-time
//!   displacement from the caller's frame pointer, and return addresses
//!   carry that displacement so the runtime can walk and split stacks; and
//! * the **CPS** compiler ([`cps_convert`]), which converts programs to
//!   continuation-passing style first, so every continuation becomes a
//!   heap-allocated closure and all calls are tail calls. This reproduces
//!   the heap-based representation of control used as the baseline in §4
//!   (the CPS thread system) and §5 (the Appel–Shao comparison).
//!
//! # Example
//!
//! ```
//! use oneshot_compiler::{compile_program, Pipeline};
//! use oneshot_sexp::read_all;
//!
//! let forms = read_all("(define (id x) x) (id 42)").unwrap();
//! let prog = compile_program(&forms, Pipeline::Direct).unwrap();
//! assert!(prog.codes.len() >= 2); // the toplevel thunk and `id`
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod ast;
pub mod builtins;
mod codegen;
mod cps;
mod expand;
mod ops;
pub mod peephole;

pub use ast::{Expr, Lambda, Program, VarId};
pub use codegen::{compile_program, compile_program_with};
pub use cps::cps_convert;
pub use expand::{expand_program, CompileError};
pub use ops::{CodeObject, CompiledProgram, FreeSrc, Op, MNEMONICS};

/// Back-end options, independent of the [`Pipeline`] choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompilerOptions {
    /// Run the peephole superinstruction pass ([`peephole::fuse`]) on every
    /// generated code body. On by default; turning it off yields the
    /// unfused instruction stream for dispatch-cost comparisons (the E9
    /// experiment) — results and control-event counters are identical
    /// either way.
    pub fuse: bool,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions { fuse: true }
    }
}

/// Which compilation pipeline to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pipeline {
    /// Direct style: stack frames, the paper's representation of control.
    #[default]
    Direct,
    /// Continuation-passing style: control in heap closures (the baseline).
    Cps,
}
