//! The expander: reader data → core AST.
//!
//! Handles the core forms (`quote`, `if`, `set!`, `lambda`, `begin`,
//! `define`) and lowers the derived forms of R4RS: `let` (plain and named),
//! `let*`, `letrec`, `cond` (including `=>`), `case`, `and`, `or`, `when`,
//! `unless`, `do`, and `quasiquote`/`unquote`/`unquote-splicing` with
//! nesting. Internal defines at the head of a body are lowered to `letrec`
//! semantics. Variables are alpha-renamed to unique [`VarId`]s against a
//! lexical environment, so keywords can be shadowed (`(let ((if list)) (if
//! 1 2 3))` builds a list).

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use oneshot_sexp::Datum;

use crate::ast::{Expr, Lambda, Program, VarId};

/// A compile-time error.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Description, including the offending form where helpful.
    pub message: String,
}

impl CompileError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        CompileError { message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

type Result<T> = std::result::Result<T, CompileError>;

/// Placeholder symbol for "no value" positions created during expansion
/// (`(define x)`, empty `do` results). Contains a control character no
/// reader token can produce, so user code can never name it.
const UNSPEC_SENTINEL: &str = "\u{1}unspecified";

/// Lexical environment: name → variable.
#[derive(Debug, Clone, Default)]
struct Env {
    frames: Vec<HashMap<String, VarId>>,
}

impl Env {
    fn lookup(&self, name: &str) -> Option<VarId> {
        self.frames.iter().rev().find_map(|f| f.get(name).copied())
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn bind(&mut self, name: &str, id: VarId) {
        self.frames.last_mut().expect("bind outside any scope").insert(name.to_string(), id);
    }
}

/// The expander state.
struct Expander {
    env: Env,
    next_var: u32,
    defined_globals: Vec<Rc<str>>,
}

/// Expands a whole program (a sequence of toplevel forms).
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed special forms, misplaced
/// `define`, or bad binding syntax.
pub fn expand_program(forms: &[Datum]) -> Result<Program> {
    let mut x = Expander { env: Env::default(), next_var: 0, defined_globals: Vec::new() };
    x.env.push();
    let mut out = Vec::new();
    for form in forms {
        out.push(x.toplevel(form)?);
    }
    Ok(Program { forms: out, var_count: x.next_var, defined_globals: x.defined_globals })
}

fn err(msg: impl Into<String>) -> CompileError {
    CompileError::new(msg)
}

fn sym(d: &Datum) -> Option<&str> {
    d.as_symbol()
}

impl Expander {
    fn fresh(&mut self) -> VarId {
        let id = VarId(self.next_var);
        self.next_var += 1;
        id
    }

    /// Is `name` a keyword here (not shadowed by a lexical binding)?
    fn keyword(&self, name: &str) -> bool {
        self.env.lookup(name).is_none()
            && matches!(
                name,
                "quote"
                    | "quasiquote"
                    | "unquote"
                    | "unquote-splicing"
                    | "if"
                    | "set!"
                    | "lambda"
                    | "begin"
                    | "define"
                    | "let"
                    | "let*"
                    | "letrec"
                    | "letrec*"
                    | "cond"
                    | "case"
                    | "and"
                    | "or"
                    | "when"
                    | "unless"
                    | "do"
                    | "else"
            )
    }

    fn toplevel(&mut self, d: &Datum) -> Result<Expr> {
        if let Some(items) = d.proper_list() {
            if let Some(head) = items.first().and_then(|h| h.as_symbol()) {
                if head == "define" && self.keyword("define") {
                    return self.toplevel_define(&items);
                }
                if head == "begin" && self.keyword("begin") {
                    // Toplevel begin splices.
                    let forms: Vec<Expr> =
                        items[1..].iter().map(|f| self.toplevel(f)).collect::<Result<_>>()?;
                    return Ok(if forms.is_empty() {
                        Expr::unspecified()
                    } else {
                        Expr::Seq(forms)
                    });
                }
            }
        }
        self.expr(d)
    }

    fn toplevel_define(&mut self, items: &[&Datum]) -> Result<Expr> {
        let (name, value) = self.parse_define(items)?;
        let name_rc: Rc<str> = Rc::from(name.as_str());
        self.defined_globals.push(name_rc.clone());
        let value = self.expr(&value)?;
        let value = name_lambda(value, &name);
        Ok(Expr::GlobalDef(name_rc, Box::new(value)))
    }

    /// Parses `(define name value)` or `(define (name . args) body...)`,
    /// returning the name and a value expression (possibly a synthesized
    /// lambda datum).
    fn parse_define(&mut self, items: &[&Datum]) -> Result<(String, Datum)> {
        match items {
            [_, Datum::Symbol(name)] => Ok((name.clone(), Datum::Symbol(UNSPEC_SENTINEL.into()))),
            [_, Datum::Symbol(name), value] => Ok((name.clone(), (*value).clone())),
            [_, header, body @ ..] if matches!(header, Datum::Pair(_)) => {
                let name = match header.car() {
                    Some(Datum::Symbol(name)) => name.clone(),
                    _ => return Err(err(format!("bad define header: {header}"))),
                };
                // (define (f . formals) body...) => (define f (lambda formals body...))
                let formals = header.cdr().expect("pair").clone();
                let mut lam = vec![Datum::symbol("lambda"), formals];
                lam.extend(body.iter().map(|d| (*d).clone()));
                Ok((name, Datum::list(lam)))
            }
            _ => Err(err("malformed define")),
        }
    }

    fn expr(&mut self, d: &Datum) -> Result<Expr> {
        match d {
            Datum::Bool(_)
            | Datum::Fixnum(_)
            | Datum::Flonum(_)
            | Datum::Char(_)
            | Datum::Str(_)
            | Datum::Vector(_) => Ok(Expr::Quote(d.clone())),
            Datum::Nil => Err(err("empty application ()")),
            Datum::Symbol(name) => {
                if name == UNSPEC_SENTINEL {
                    return Ok(Expr::unspecified());
                }
                match self.env.lookup(name) {
                    Some(v) => Ok(Expr::Ref(v)),
                    None => Ok(Expr::GlobalRef(Rc::from(name.as_str()))),
                }
            }
            Datum::Pair(_) => self.form(d),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn form(&mut self, d: &Datum) -> Result<Expr> {
        let Some(items) = d.proper_list() else {
            return Err(err(format!("improper list in expression position: {d}")));
        };
        if items.is_empty() {
            return Err(err("empty application ()"));
        }
        if let Some(head) = sym(items[0]) {
            if self.keyword(head) {
                return match head {
                    "quote" => match items.as_slice() {
                        [_, x] => Ok(Expr::Quote((*x).clone())),
                        _ => Err(err("quote takes one operand")),
                    },
                    "if" => match items.as_slice() {
                        [_, c, t] => Ok(Expr::If(
                            Box::new(self.expr(c)?),
                            Box::new(self.expr(t)?),
                            Box::new(Expr::unspecified()),
                        )),
                        [_, c, t, e] => Ok(Expr::If(
                            Box::new(self.expr(c)?),
                            Box::new(self.expr(t)?),
                            Box::new(self.expr(e)?),
                        )),
                        _ => Err(err("malformed if")),
                    },
                    "set!" => match items.as_slice() {
                        [_, Datum::Symbol(name), value] => {
                            let value = Box::new(self.expr(value)?);
                            match self.env.lookup(name) {
                                Some(v) => Ok(Expr::Set(v, value)),
                                None => Ok(Expr::GlobalSet(Rc::from(name.as_str()), value)),
                            }
                        }
                        _ => Err(err("malformed set!")),
                    },
                    "lambda" => {
                        if items.len() < 3 {
                            return Err(err("malformed lambda"));
                        }
                        self.lambda(items[1], &items[2..], None)
                    }
                    "begin" => {
                        if items.len() == 1 {
                            Ok(Expr::unspecified())
                        } else {
                            self.body(&items[1..])
                        }
                    }
                    "define" => Err(err("define is not allowed in expression position")),
                    "let" => self.let_form(&items),
                    "let*" => self.let_star(&items),
                    "letrec" | "letrec*" => self.letrec(&items),
                    "cond" => self.cond(&items),
                    "case" => self.case(&items),
                    "and" => Ok(self.and(&items[1..])?),
                    "or" => self.or(&items[1..]),
                    "when" => {
                        if items.len() < 3 {
                            return Err(err("malformed when"));
                        }
                        let c = self.expr(items[1])?;
                        let body = self.body(&items[2..])?;
                        Ok(Expr::If(Box::new(c), Box::new(body), Box::new(Expr::unspecified())))
                    }
                    "unless" => {
                        if items.len() < 3 {
                            return Err(err("malformed unless"));
                        }
                        let c = self.expr(items[1])?;
                        let body = self.body(&items[2..])?;
                        Ok(Expr::If(Box::new(c), Box::new(Expr::unspecified()), Box::new(body)))
                    }
                    "do" => self.do_form(&items),
                    "quasiquote" => match items.as_slice() {
                        [_, x] => {
                            let lowered = quasi(x, 1)?;
                            self.expr(&lowered)
                        }
                        _ => Err(err("quasiquote takes one operand")),
                    },
                    "unquote" | "unquote-splicing" => {
                        Err(err(format!("{head} outside quasiquote")))
                    }
                    "else" => Err(err("else outside cond/case")),
                    _ => unreachable!("keyword list covers match"),
                };
            }
        }
        // Application.
        let f = self.expr(items[0])?;
        let args: Vec<Expr> = items[1..].iter().map(|a| self.expr(a)).collect::<Result<_>>()?;
        // Direct lambda application becomes Let (no closure allocation).
        if let Expr::Lambda(lam) = &f {
            if lam.rest.is_none() && lam.params.len() == args.len() {
                let bindings = lam.params.iter().copied().zip(args).collect();
                return Ok(Expr::Let(bindings, Box::new(lam.body.clone())));
            }
        }
        Ok(Expr::App(Box::new(f), args))
    }

    /// Expands a lambda: `formals` is a symbol, a proper list, or an
    /// improper list; `body` is one or more forms.
    fn lambda(&mut self, formals: &Datum, body: &[&Datum], name: Option<&str>) -> Result<Expr> {
        self.env.push();
        let mut params = Vec::new();
        let mut rest = None;
        match formals {
            Datum::Symbol(n) => {
                let id = self.fresh();
                self.env.bind(n, id);
                rest = Some(id);
            }
            _ => {
                let mut it = formals.iter();
                for p in it.by_ref() {
                    let Some(n) = p.as_symbol() else {
                        self.env.pop();
                        return Err(err(format!("bad parameter: {p}")));
                    };
                    let id = self.fresh();
                    self.env.bind(n, id);
                    params.push(id);
                }
                match it.tail() {
                    Datum::Nil => {}
                    Datum::Symbol(n) => {
                        let id = self.fresh();
                        self.env.bind(n, id);
                        rest = Some(id);
                    }
                    other => {
                        self.env.pop();
                        return Err(err(format!("bad rest parameter: {other}")));
                    }
                }
            }
        }
        let body = self.body(body);
        self.env.pop();
        Ok(Expr::Lambda(Rc::new(Lambda {
            params,
            rest,
            body: body?,
            name: name.map(String::from),
        })))
    }

    /// Expands a body: internal defines at the head become `letrec`
    /// bindings; the rest is a sequence.
    fn body(&mut self, forms: &[&Datum]) -> Result<Expr> {
        if forms.is_empty() {
            return Err(err("empty body"));
        }
        // Collect leading internal defines.
        let mut defines: Vec<(String, Datum)> = Vec::new();
        let mut rest = forms;
        while let Some(form) = rest.first() {
            let is_define = form
                .proper_list()
                .and_then(|l| l.first().and_then(|h| h.as_symbol()).map(String::from))
                .is_some_and(|h| h == "define" && self.keyword("define"));
            if !is_define {
                break;
            }
            let items = form.proper_list().expect("checked");
            defines.push(self.parse_define(&items)?);
            rest = &rest[1..];
        }
        if rest.is_empty() {
            return Err(err("body consists only of definitions"));
        }
        if defines.is_empty() {
            let seq: Vec<Expr> = rest.iter().map(|f| self.expr(f)).collect::<Result<_>>()?;
            return Ok(if seq.len() == 1 {
                seq.into_iter().next().expect("one")
            } else {
                Expr::Seq(seq)
            });
        }
        // Internal defines: letrec* semantics via Let of unspecified + set!.
        self.env.push();
        let ids: Vec<VarId> = defines
            .iter()
            .map(|(name, _)| {
                let id = self.fresh();
                self.env.bind(name, id);
                id
            })
            .collect();
        let result = (|| {
            let mut seq = Vec::new();
            for ((name, value), id) in defines.iter().zip(&ids) {
                let v = self.expr(value)?;
                let v = name_lambda(v, name);
                seq.push(Expr::Set(*id, Box::new(v)));
            }
            for f in rest {
                seq.push(self.expr(f)?);
            }
            let bindings = ids.iter().map(|id| (*id, Expr::unspecified())).collect();
            Ok(Expr::Let(bindings, Box::new(Expr::Seq(seq))))
        })();
        self.env.pop();
        result
    }

    fn binding_specs<'d>(&mut self, spec: &'d Datum) -> Result<Vec<(&'d str, &'d Datum)>> {
        let Some(pairs) = spec.proper_list() else {
            return Err(err(format!("bad binding list: {spec}")));
        };
        pairs
            .into_iter()
            .map(|b| match b.proper_list().as_deref() {
                Some([Datum::Symbol(n), init]) => Ok((n.as_str(), *init)),
                _ => Err(err(format!("bad binding: {b}"))),
            })
            .collect()
    }

    fn let_form(&mut self, items: &[&Datum]) -> Result<Expr> {
        // Named let?
        if items.len() >= 3 {
            if let Some(loop_name) = items[1].as_symbol() {
                return self.named_let(loop_name, items[2], &items[3..]);
            }
        }
        if items.len() < 3 {
            return Err(err("malformed let"));
        }
        let specs = self.binding_specs(items[1])?;
        let inits: Vec<Expr> =
            specs.iter().map(|(_, init)| self.expr(init)).collect::<Result<_>>()?;
        self.env.push();
        let bindings: Vec<(VarId, Expr)> = specs
            .iter()
            .zip(inits)
            .map(|((name, _), init)| {
                let id = self.fresh();
                self.env.bind(name, id);
                (id, init)
            })
            .collect();
        let body = self.body(&items[2..]);
        self.env.pop();
        Ok(Expr::Let(bindings, Box::new(body?)))
    }

    fn named_let(&mut self, name: &str, spec: &Datum, body: &[&Datum]) -> Result<Expr> {
        if body.is_empty() {
            return Err(err("malformed named let"));
        }
        let specs = self.binding_specs(spec)?;
        let inits: Vec<Expr> =
            specs.iter().map(|(_, init)| self.expr(init)).collect::<Result<_>>()?;
        // (letrec ((name (lambda (params) body))) (name inits...))
        self.env.push();
        let loop_id = self.fresh();
        self.env.bind(name, loop_id);
        let lam = (|| {
            self.env.push();
            let params: Vec<VarId> = specs
                .iter()
                .map(|(n, _)| {
                    let id = self.fresh();
                    self.env.bind(n, id);
                    id
                })
                .collect();
            let b = self.body(body);
            self.env.pop();
            Ok(Expr::Lambda(Rc::new(Lambda {
                params,
                rest: None,
                body: b?,
                name: Some(name.to_string()),
            })))
        })();
        self.env.pop();
        let lam = lam?;
        let call = Expr::App(Box::new(Expr::Ref(loop_id)), inits);
        Ok(Expr::Let(
            vec![(loop_id, Expr::unspecified())],
            Box::new(Expr::Seq(vec![Expr::Set(loop_id, Box::new(lam)), call])),
        ))
    }

    fn let_star(&mut self, items: &[&Datum]) -> Result<Expr> {
        if items.len() < 3 {
            return Err(err("malformed let*"));
        }
        let specs = self.binding_specs(items[1])?;
        let mut pushed = 0;
        let result = (|| {
            let mut bindings = Vec::new();
            for (name, init) in &specs {
                let init = self.expr(init)?;
                self.env.push();
                pushed += 1;
                let id = self.fresh();
                self.env.bind(name, id);
                bindings.push((id, init));
            }
            let body = self.body(&items[2..])?;
            // Nested lets, innermost first.
            Ok(bindings.into_iter().rev().fold(body, |acc, b| Expr::Let(vec![b], Box::new(acc))))
        })();
        for _ in 0..pushed {
            self.env.pop();
        }
        result
    }

    fn letrec(&mut self, items: &[&Datum]) -> Result<Expr> {
        if items.len() < 3 {
            return Err(err("malformed letrec"));
        }
        let specs = self.binding_specs(items[1])?;
        self.env.push();
        let result = (|| {
            let ids: Vec<VarId> = specs
                .iter()
                .map(|(name, _)| {
                    let id = self.fresh();
                    self.env.bind(name, id);
                    id
                })
                .collect();
            let mut seq = Vec::new();
            for ((name, init), id) in specs.iter().zip(&ids) {
                let v = self.expr(init)?;
                seq.push(Expr::Set(*id, Box::new(name_lambda(v, name))));
            }
            seq.push(self.body(&items[2..])?);
            let bindings = ids.iter().map(|id| (*id, Expr::unspecified())).collect();
            Ok(Expr::Let(bindings, Box::new(Expr::Seq(seq))))
        })();
        self.env.pop();
        result
    }

    fn cond(&mut self, items: &[&Datum]) -> Result<Expr> {
        let mut out = Expr::unspecified();
        for clause in items[1..].iter().rev() {
            let Some(parts) = clause.proper_list() else {
                return Err(err(format!("bad cond clause: {clause}")));
            };
            if parts.is_empty() {
                return Err(err("empty cond clause"));
            }
            let is_else = parts[0].as_symbol() == Some("else") && self.keyword("else");
            if is_else {
                out = self.body(&parts[1..])?;
                continue;
            }
            let test = self.expr(parts[0])?;
            out = match parts.get(1).and_then(|p| p.as_symbol()) {
                // (test => receiver)
                Some("=>") if parts.len() == 3 => {
                    let recv = self.expr(parts[2])?;
                    let tmp = self.fresh();
                    Expr::Let(
                        vec![(tmp, test)],
                        Box::new(Expr::If(
                            Box::new(Expr::Ref(tmp)),
                            Box::new(Expr::App(Box::new(recv), vec![Expr::Ref(tmp)])),
                            Box::new(out),
                        )),
                    )
                }
                _ if parts.len() == 1 => {
                    // (test) — the value of the test itself.
                    let tmp = self.fresh();
                    Expr::Let(
                        vec![(tmp, test)],
                        Box::new(Expr::If(
                            Box::new(Expr::Ref(tmp)),
                            Box::new(Expr::Ref(tmp)),
                            Box::new(out),
                        )),
                    )
                }
                _ => Expr::If(Box::new(test), Box::new(self.body(&parts[1..])?), Box::new(out)),
            };
        }
        Ok(out)
    }

    fn case(&mut self, items: &[&Datum]) -> Result<Expr> {
        if items.len() < 2 {
            return Err(err("malformed case"));
        }
        let key = self.expr(items[1])?;
        let tmp = self.fresh();
        let mut out = Expr::unspecified();
        for clause in items[2..].iter().rev() {
            let Some(parts) = clause.proper_list() else {
                return Err(err(format!("bad case clause: {clause}")));
            };
            if parts.len() < 2 {
                return Err(err(format!("bad case clause: {clause}")));
            }
            if parts[0].as_symbol() == Some("else") && self.keyword("else") {
                out = self.body(&parts[1..])?;
                continue;
            }
            let Some(data) = parts[0].proper_list() else {
                return Err(err(format!("bad case datum list: {}", parts[0])));
            };
            // (memv key '(d ...)) via chained eqv? on the temp.
            let mut test = Expr::bool(false);
            for d in data.into_iter().rev() {
                let cmp = Expr::App(
                    Box::new(Expr::GlobalRef(Rc::from("eqv?"))),
                    vec![Expr::Ref(tmp), Expr::Quote(d.clone())],
                );
                test = Expr::If(Box::new(cmp), Box::new(Expr::bool(true)), Box::new(test));
            }
            out = Expr::If(Box::new(test), Box::new(self.body(&parts[1..])?), Box::new(out));
        }
        Ok(Expr::Let(vec![(tmp, key)], Box::new(out)))
    }

    fn and(&mut self, args: &[&Datum]) -> Result<Expr> {
        match args {
            [] => Ok(Expr::bool(true)),
            [x] => self.expr(x),
            [x, rest @ ..] => {
                let head = self.expr(x)?;
                let tail = self.and(rest)?;
                Ok(Expr::If(Box::new(head), Box::new(tail), Box::new(Expr::bool(false))))
            }
        }
    }

    fn or(&mut self, args: &[&Datum]) -> Result<Expr> {
        match args {
            [] => Ok(Expr::bool(false)),
            [x] => self.expr(x),
            [x, rest @ ..] => {
                let head = self.expr(x)?;
                let tail = self.or(rest)?;
                let tmp = self.fresh();
                Ok(Expr::Let(
                    vec![(tmp, head)],
                    Box::new(Expr::If(
                        Box::new(Expr::Ref(tmp)),
                        Box::new(Expr::Ref(tmp)),
                        Box::new(tail),
                    )),
                ))
            }
        }
    }

    /// `(do ((var init step)...) (test result...) body...)`
    fn do_form(&mut self, items: &[&Datum]) -> Result<Expr> {
        if items.len() < 3 {
            return Err(err("malformed do"));
        }
        let Some(specs) = items[1].proper_list() else {
            return Err(err("bad do bindings"));
        };
        let mut names = Vec::new();
        let mut inits = Vec::new();
        let mut steps = Vec::new();
        for spec in specs {
            match spec.proper_list().as_deref() {
                Some([Datum::Symbol(n), init]) => {
                    names.push(n.clone());
                    inits.push((*init).clone());
                    steps.push(Datum::Symbol(n.clone()));
                }
                Some([Datum::Symbol(n), init, step]) => {
                    names.push(n.clone());
                    inits.push((*init).clone());
                    steps.push((*step).clone());
                }
                _ => return Err(err(format!("bad do binding: {spec}"))),
            }
        }
        let Some(exit) = items[2].proper_list() else {
            return Err(err("bad do exit clause"));
        };
        if exit.is_empty() {
            return Err(err("bad do exit clause"));
        }
        // Desugar to a named let:
        // (let loop ((v init)...)
        //   (if test (begin result...) (begin body... (loop step...))))
        let loop_sym = Datum::symbol("%do-loop");
        let bindings: Vec<Datum> = names
            .iter()
            .zip(&inits)
            .map(|(n, i)| Datum::list([Datum::symbol(n.clone()), i.clone()]))
            .collect();
        let mut recur = vec![loop_sym.clone()];
        recur.extend(steps);
        let mut iter_body: Vec<Datum> = items[3..].iter().map(|d| (*d).clone()).collect();
        iter_body.push(Datum::list(recur));
        let result: Datum = if exit.len() == 1 {
            Datum::symbol(UNSPEC_SENTINEL)
        } else {
            let mut b = vec![Datum::symbol("begin")];
            b.extend(exit[1..].iter().map(|d| (*d).clone()));
            Datum::list(b)
        };
        let mut begin_iter = vec![Datum::symbol("begin")];
        begin_iter.extend(iter_body);
        let if_form =
            Datum::list([Datum::symbol("if"), exit[0].clone(), result, Datum::list(begin_iter)]);
        let form = Datum::list([Datum::symbol("let"), loop_sym, Datum::list(bindings), if_form]);
        self.expr(&form)
    }
}

/// Attaches `name` to an anonymous lambda for diagnostics.
fn name_lambda(e: Expr, name: &str) -> Expr {
    match e {
        Expr::Lambda(lam) if lam.name.is_none() => {
            let mut l = (*lam).clone();
            l.name = Some(name.to_string());
            Expr::Lambda(Rc::new(l))
        }
        other => other,
    }
}

/// Lowers quasiquotation at nesting `depth` into cons/append calls.
fn quasi(d: &Datum, depth: u32) -> Result<Datum> {
    match d {
        Datum::Pair(p) => {
            // (unquote x)
            if let Some("unquote") = p.0.as_symbol() {
                if let Some(items) = d.proper_list() {
                    if items.len() == 2 {
                        return if depth == 1 {
                            Ok(items[1].clone())
                        } else {
                            Ok(Datum::list([
                                Datum::symbol("list"),
                                Datum::list([Datum::symbol("quote"), Datum::symbol("unquote")]),
                                quasi(items[1], depth - 1)?,
                            ]))
                        };
                    }
                }
                return Err(err("malformed unquote"));
            }
            if let Some("quasiquote") = p.0.as_symbol() {
                if let Some(items) = d.proper_list() {
                    if items.len() == 2 {
                        return Ok(Datum::list([
                            Datum::symbol("list"),
                            Datum::list([Datum::symbol("quote"), Datum::symbol("quasiquote")]),
                            quasi(items[1], depth + 1)?,
                        ]));
                    }
                }
                return Err(err("malformed nested quasiquote"));
            }
            // ((unquote-splicing x) . rest)
            if let Datum::Pair(head) = &p.0 {
                if let Some("unquote-splicing") = head.0.as_symbol() {
                    if let Some(items) = p.0.proper_list() {
                        if items.len() == 2 && depth == 1 {
                            return Ok(Datum::list([
                                Datum::symbol("append"),
                                items[1].clone(),
                                quasi(&p.1, depth)?,
                            ]));
                        }
                    }
                }
            }
            Ok(Datum::list([Datum::symbol("cons"), quasi(&p.0, depth)?, quasi(&p.1, depth)?]))
        }
        Datum::Vector(items) => {
            let as_list = Datum::list(items.clone());
            Ok(Datum::list([Datum::symbol("list->vector"), quasi(&as_list, depth)?]))
        }
        atom => Ok(Datum::list([Datum::symbol("quote"), atom.clone()])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneshot_sexp::read_all;

    fn expand1(src: &str) -> Expr {
        let forms = read_all(src).unwrap();
        let p = expand_program(&forms).unwrap();
        assert_eq!(p.forms.len(), 1, "expected one form from {src}");
        p.forms.into_iter().next().unwrap()
    }

    #[test]
    fn constants_self_evaluate() {
        assert!(matches!(expand1("42"), Expr::Quote(Datum::Fixnum(42))));
        assert!(matches!(expand1("\"s\""), Expr::Quote(Datum::Str(_))));
        assert!(matches!(expand1("#(1)"), Expr::Quote(Datum::Vector(_))));
    }

    #[test]
    fn variables_resolve_lexically() {
        let e = expand1("(lambda (x) x)");
        let Expr::Lambda(lam) = e else { panic!() };
        assert_eq!(lam.params.len(), 1);
        assert_eq!(lam.body, Expr::Ref(lam.params[0]));
    }

    #[test]
    fn unbound_variables_are_global() {
        assert!(matches!(expand1("x"), Expr::GlobalRef(n) if &*n == "x"));
    }

    #[test]
    fn shadowing_keywords_works() {
        // `if` bound as a variable is an ordinary variable.
        let e = expand1("(lambda (if) (if 1 2 3))");
        let Expr::Lambda(lam) = e else { panic!() };
        assert!(matches!(lam.body, Expr::App(..)), "shadowed if is a call");
    }

    #[test]
    fn one_armed_if_gets_unspecified() {
        let Expr::If(_, _, e) = expand1("(if #t 1)") else { panic!() };
        assert_eq!(*e, Expr::unspecified());
    }

    #[test]
    fn let_becomes_let_node() {
        let Expr::Let(bindings, body) = expand1("(let ((x 1) (y 2)) y)") else { panic!() };
        assert_eq!(bindings.len(), 2);
        assert_eq!(*body, Expr::Ref(bindings[1].0));
    }

    #[test]
    fn direct_lambda_application_becomes_let() {
        assert!(matches!(expand1("((lambda (x) x) 1)"), Expr::Let(..)));
    }

    #[test]
    fn named_let_builds_loop() {
        let e = expand1("(let loop ((i 0)) (if (< i 3) (loop (+ i 1)) i))");
        assert!(matches!(e, Expr::Let(..)));
    }

    #[test]
    fn let_star_nests() {
        let Expr::Let(b1, body) = expand1("(let* ((x 1) (y x)) y)") else { panic!() };
        assert_eq!(b1.len(), 1);
        let Expr::Let(b2, _) = &*body else { panic!("inner let") };
        // y's init references x.
        assert_eq!(b2[0].1, Expr::Ref(b1[0].0));
    }

    #[test]
    fn variadic_lambda() {
        let Expr::Lambda(lam) = expand1("(lambda (a . rest) rest)") else { panic!() };
        assert_eq!(lam.params.len(), 1);
        assert!(lam.rest.is_some());
        let Expr::Lambda(lam2) = expand1("(lambda all all)") else { panic!() };
        assert!(lam2.params.is_empty() && lam2.rest.is_some());
    }

    #[test]
    fn cond_with_arrow_and_else() {
        let e = expand1("(cond ((assv 1 l) => cdr) (else 0))");
        assert!(matches!(e, Expr::If(..) | Expr::Let(..)));
    }

    #[test]
    fn and_or_lower_to_ifs() {
        assert_eq!(expand1("(and)"), Expr::bool(true));
        assert_eq!(expand1("(or)"), Expr::bool(false));
        assert!(matches!(expand1("(and 1 2)"), Expr::If(..)));
        assert!(matches!(expand1("(or 1 2)"), Expr::Let(..)));
    }

    #[test]
    fn internal_defines_become_letrec() {
        let Expr::Lambda(lam) = expand1("(lambda (x) (define y 1) (+ x y))") else { panic!() };
        assert!(matches!(lam.body, Expr::Let(..)));
    }

    #[test]
    fn define_procedure_shorthand() {
        let forms = read_all("(define (f x) x)").unwrap();
        let p = expand_program(&forms).unwrap();
        let Expr::GlobalDef(name, v) = &p.forms[0] else { panic!() };
        assert_eq!(&**name, "f");
        assert!(matches!(&**v, Expr::Lambda(lam) if lam.name.as_deref() == Some("f")));
        assert_eq!(&*p.defined_globals[0], "f");
    }

    #[test]
    fn quasiquote_lowers_to_constructors() {
        // `(a ,b ,@c) => (cons 'a (cons b (append c '())))
        let e = expand1("(let ((b 1) (c '())) `(a ,b ,@c))");
        assert!(matches!(e, Expr::Let(..)));
        // Nested quasiquote keeps inner unquote quoted.
        let forms = read_all("``(,a)").unwrap();
        assert!(expand_program(&forms).is_ok());
    }

    #[test]
    fn do_loops_expand() {
        let e = expand1("(do ((i 0 (+ i 1)) (acc 1)) ((= i 3) acc) acc)");
        assert!(matches!(e, Expr::Let(..)));
    }

    #[test]
    fn case_expands_to_eqv_chain() {
        let e = expand1("(case 2 ((1 2) 'small) (else 'big))");
        assert!(matches!(e, Expr::Let(..)));
    }

    #[test]
    fn errors_on_malformed_forms() {
        for src in [
            "(if)",
            "(set! 1 2)",
            "(lambda)",
            "()",
            "(let ((x)) x)",
            "(quote a b)",
            "(unquote x)",
            "(define x 1 2)",
            "(lambda (x) (define y 1))",
        ] {
            let forms = read_all(src).unwrap();
            assert!(expand_program(&forms).is_err(), "{src} should fail");
        }
    }

    #[test]
    fn toplevel_begin_splices_defines() {
        let forms = read_all("(begin (define a 1) (define b 2)) a").unwrap();
        let p = expand_program(&forms).unwrap();
        assert_eq!(p.defined_globals.len(), 2);
    }

    #[test]
    fn alpha_renaming_distinguishes_shadowed_vars() {
        let Expr::Let(b1, body) = expand1("(let ((x 1)) (let ((x 2)) x))") else { panic!() };
        let Expr::Let(b2, inner) = &*body else { panic!() };
        assert_ne!(b1[0].0, b2[0].0);
        assert_eq!(**inner, Expr::Ref(b2[0].0));
    }
}
