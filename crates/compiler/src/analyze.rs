//! Static analyses over the core AST: assignment analysis (which variables
//! are `set!` targets and must be boxed into cells) and free-variable
//! analysis (which variables a lambda captures).

use std::collections::{BTreeSet, HashSet};

use crate::ast::{Expr, Lambda, VarId};

/// All lexical variables that are targets of `set!` anywhere in `forms`.
///
/// These are boxed (assignment conversion): their binding sites allocate a
/// cell, references read through it, assignments write through it. This
/// keeps the flat-closure representation sound in the presence of shared
/// mutable captures.
pub fn mutated_vars(forms: &[Expr]) -> HashSet<VarId> {
    let mut out = HashSet::new();
    for f in forms {
        collect_mutated(f, &mut out);
    }
    out
}

fn collect_mutated(e: &Expr, out: &mut HashSet<VarId>) {
    match e {
        Expr::Quote(_) | Expr::Unspecified | Expr::Ref(_) | Expr::GlobalRef(_) => {}
        Expr::Set(v, rhs) => {
            out.insert(*v);
            collect_mutated(rhs, out);
        }
        Expr::GlobalSet(_, rhs) | Expr::GlobalDef(_, rhs) => collect_mutated(rhs, out),
        Expr::If(c, t, f) => {
            collect_mutated(c, out);
            collect_mutated(t, out);
            collect_mutated(f, out);
        }
        Expr::Lambda(l) => collect_mutated(&l.body, out),
        Expr::Let(bindings, body) => {
            for (_, init) in bindings {
                collect_mutated(init, out);
            }
            collect_mutated(body, out);
        }
        Expr::Seq(es) => {
            for x in es {
                collect_mutated(x, out);
            }
        }
        Expr::App(f, args) => {
            collect_mutated(f, out);
            for a in args {
                collect_mutated(a, out);
            }
        }
    }
}

/// The free lexical variables of a lambda, in deterministic order.
pub fn free_vars(l: &Lambda) -> Vec<VarId> {
    let mut bound: HashSet<VarId> = l.params.iter().copied().collect();
    bound.extend(l.rest);
    let mut free = BTreeSet::new();
    collect_free(&l.body, &mut bound, &mut free);
    free.into_iter().collect()
}

fn collect_free(e: &Expr, bound: &mut HashSet<VarId>, free: &mut BTreeSet<VarId>) {
    match e {
        Expr::Quote(_) | Expr::Unspecified | Expr::GlobalRef(_) => {}
        Expr::Ref(v) => {
            if !bound.contains(v) {
                free.insert(*v);
            }
        }
        Expr::Set(v, rhs) => {
            if !bound.contains(v) {
                free.insert(*v);
            }
            collect_free(rhs, bound, free);
        }
        Expr::GlobalSet(_, rhs) | Expr::GlobalDef(_, rhs) => collect_free(rhs, bound, free),
        Expr::If(c, t, f) => {
            collect_free(c, bound, free);
            collect_free(t, bound, free);
            collect_free(f, bound, free);
        }
        Expr::Lambda(l) => {
            // Variables free in a nested lambda and not bound here are free
            // here too.
            for v in free_vars(l) {
                if !bound.contains(&v) {
                    free.insert(v);
                }
            }
        }
        Expr::Let(bindings, body) => {
            for (_, init) in bindings {
                collect_free(init, bound, free);
            }
            let newly: Vec<VarId> =
                bindings.iter().map(|(v, _)| *v).filter(|v| bound.insert(*v)).collect();
            collect_free(body, bound, free);
            for v in newly {
                bound.remove(&v);
            }
        }
        Expr::Seq(es) => {
            for x in es {
                collect_free(x, bound, free);
            }
        }
        Expr::App(f, args) => {
            collect_free(f, bound, free);
            for a in args {
                collect_free(a, bound, free);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::expand_program;
    use oneshot_sexp::read_all;

    fn expand(src: &str) -> Vec<Expr> {
        expand_program(&read_all(src).unwrap()).unwrap().forms
    }

    #[test]
    fn set_targets_are_mutated() {
        let forms = expand("(lambda (x y) (set! x 1) y)");
        let m = mutated_vars(&forms);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn free_vars_cross_lambda_boundaries() {
        let forms = expand("(lambda (x) (lambda (y) (x y)))");
        let Expr::Lambda(outer) = &forms[0] else { panic!() };
        assert!(free_vars(outer).is_empty());
        let Expr::Lambda(inner) = &outer.body else { panic!() };
        assert_eq!(free_vars(inner), vec![outer.params[0]]);
    }

    #[test]
    fn let_bindings_are_not_free_in_body() {
        let forms = expand("(lambda (x) (let ((y x)) (lambda () y)))");
        let Expr::Lambda(outer) = &forms[0] else { panic!() };
        assert!(free_vars(outer).is_empty());
        let Expr::Let(bindings, body) = &outer.body else { panic!() };
        let Expr::Lambda(inner) = &**body else { panic!() };
        assert_eq!(free_vars(inner), vec![bindings[0].0]);
    }

    #[test]
    fn set_of_free_var_is_free() {
        let forms = expand("(lambda (x) (lambda () (set! x 1)))");
        let Expr::Lambda(outer) = &forms[0] else { panic!() };
        let Expr::Lambda(inner) = &outer.body else { panic!() };
        assert_eq!(free_vars(inner), vec![outer.params[0]]);
    }
}
