//! Peephole superinstruction fusion.
//!
//! Runs after code generation (all branch offsets already patched) and
//! fuses the dominant instruction pairs of the opcode histogram into
//! single superinstructions, halving dispatch cost on the hottest
//! sequences:
//!
//! | pair                         | fused                          |
//! |------------------------------|--------------------------------|
//! | `Lt(i)` … `BranchFalse(off)` | `BrLt { i, off }` (likewise `Le`, `Gt`, `Ge`, `NumEq`, `Eq`) |
//! | `ZeroP` `BranchFalse(off)`   | `BrZeroP(off)` (likewise `NullP`, `Not` → `BrTrue`) |
//! | `LocalRef(i)` `Return`       | `ReturnLocal(i)`               |
//! | `LocalRef(s)` `LocalSet(d)`  | `Move { src, dst }`            |
//! | `FixInt(n)` `Add(i)`         | `AddImm { i, n }` (likewise `Sub`) |
//! | `GlobalRef(g)` `Call{..}`    | `CallGlobal { g, .. }` (likewise `TailCall`) |
//! | `FixInt(n)` `BrLt { i, off }`| `BrLtImm { i, n, off }` (second generation) |
//!
//! The pass runs to a fixpoint, so second-generation pairs — a plain
//! instruction next to a superinstruction produced by the previous pass,
//! like `FixInt` feeding a fused compare-and-branch — fuse too.
//!
//! Every fused form computes exactly what the pair computed — including
//! leaving the same value in the accumulator — so fusion is semantically
//! invisible: results, control events, and `SegStack` counters are
//! identical with and without it (a property test in `oneshot-vm`
//! enforces this).
//!
//! The pass is branch-offset aware: a pair is only fused when no branch
//! targets its second instruction, and all surviving relative offsets are
//! remapped across the removals.

use crate::ops::Op;

/// Fuses adjacent instruction pairs in `ops` until no pair is left,
/// remapping branch offsets. Iterating to a fixpoint lets pairs formed by
/// an earlier pass fuse again (e.g. `FixInt` + `BrLt` → `BrLtImm`).
///
/// `ops` must be a complete, branch-patched code body (index 0 is the
/// `Entry` prologue, which is never part of a pair).
pub fn fuse(ops: &mut Vec<Op>) {
    loop {
        let before = ops.len();
        fuse_once(ops);
        if ops.len() == before {
            return;
        }
    }
}

/// One greedy left-to-right fusion pass.
fn fuse_once(ops: &mut Vec<Op>) {
    let n = ops.len();
    // Indices that are the target of some branch; a pair whose second
    // instruction is a target cannot be fused (the branch would land in
    // the middle of the superinstruction).
    let mut is_target = vec![false; n + 1];
    for (at, op) in ops.iter().enumerate() {
        if let Some(off) = op.branch_offset() {
            let target = (at as i64 + 1 + i64::from(off)) as usize;
            debug_assert!(target <= n, "branch target {target} outside code of length {n}");
            is_target[target] = true;
        }
    }
    // Greedy left-to-right pairing: `fused_with_next[at]` marks the first
    // instruction of a fused pair.
    let mut fused_with_next = vec![false; n];
    let mut at = 0;
    while at + 1 < n {
        if !is_target[at + 1] && fuse_pair(ops[at], ops[at + 1]).is_some() {
            fused_with_next[at] = true;
            at += 2;
        } else {
            at += 1;
        }
    }
    // Old index -> new index (defined for every old index and for `n`, so
    // end-of-code targets survive).
    let mut map = vec![0usize; n + 1];
    let mut new_len = 0;
    let mut at = 0;
    while at < n {
        map[at] = new_len;
        if fused_with_next[at] {
            // The second instruction of a pair maps to the fused slot; no
            // branch targets it (checked above), but a conservative mapping
            // keeps the debug assertion below meaningful.
            map[at + 1] = new_len;
            at += 2;
        } else {
            at += 1;
        }
        new_len += 1;
    }
    map[n] = new_len;
    // Emit, rewriting offsets relative to the new layout.
    let mut out = Vec::with_capacity(new_len);
    let mut at = 0;
    while at < n {
        let mut op = if fused_with_next[at] {
            let fused = fuse_pair(ops[at], ops[at + 1]).expect("pair was checked fusible");
            debug_assert!(
                !is_target[at + 1],
                "branch target lands inside fused pair at {at}: {:?} {:?}",
                ops[at],
                ops[at + 1]
            );
            fused
        } else {
            ops[at]
        };
        let width: usize = if fused_with_next[at] { 2 } else { 1 };
        if let Some(off) = op.branch_offset() {
            let old_target = (at as i64 + width as i64 + i64::from(off)) as usize;
            let new_off = map[old_target] as i64 - (map[at] as i64 + 1);
            op.set_branch_offset(i32::try_from(new_off).expect("offset fits after shrink"));
        }
        out.push(op);
        at += width;
    }
    debug_assert_eq!(out.len(), new_len);
    *ops = out;
}

/// The fused form of an adjacent pair, if one exists. The second
/// instruction's branch offset (when present) is carried through verbatim;
/// [`fuse`] remaps it afterwards.
fn fuse_pair(a: Op, b: Op) -> Option<Op> {
    Some(match (a, b) {
        (Op::Lt(i), Op::BranchFalse(off)) => Op::BrLt { i, off },
        (Op::Le(i), Op::BranchFalse(off)) => Op::BrLe { i, off },
        (Op::Gt(i), Op::BranchFalse(off)) => Op::BrGt { i, off },
        (Op::Ge(i), Op::BranchFalse(off)) => Op::BrGe { i, off },
        (Op::NumEq(i), Op::BranchFalse(off)) => Op::BrNumEq { i, off },
        (Op::Eq(i), Op::BranchFalse(off)) => Op::BrEq { i, off },
        (Op::ZeroP, Op::BranchFalse(off)) => Op::BrZeroP(off),
        (Op::NullP, Op::BranchFalse(off)) => Op::BrNullP(off),
        (Op::LocalRef(i), Op::Return) => Op::ReturnLocal(i),
        (Op::FixInt(n), Op::Add(i)) => Op::AddImm { i, n },
        (Op::FixInt(n), Op::Sub(i)) => Op::SubImm { i, n },
        (Op::LocalRef(src), Op::LocalSet(dst)) => Op::Move { src, dst },
        (Op::Not, Op::BranchFalse(off)) => Op::BrTrue(off),
        (Op::GlobalRef(g), Op::Call { disp, argc }) => Op::CallGlobal { g, disp, argc },
        (Op::GlobalRef(g), Op::TailCall { disp, argc }) => Op::TailCallGlobal { g, disp, argc },
        // Second generation: FixInt feeding a fused compare-and-branch.
        (Op::FixInt(n), Op::BrLt { i, off }) => Op::BrLtImm { i, n, off },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Op {
        Op::Entry { required: 0, rest: false }
    }

    #[test]
    fn compare_branch_pairs_fuse() {
        let mut ops = vec![entry(), Op::Lt(1), Op::BranchFalse(2), Op::FixInt(1), Op::Return];
        fuse(&mut ops);
        assert_eq!(ops[1], Op::BrLt { i: 1, off: 2 });
        assert_eq!(ops.len(), 4);
    }

    #[test]
    fn offsets_crossing_a_fusion_shrink() {
        // BranchFalse at 1 jumps over the fusible pair at 2-3.
        let mut ops = vec![
            entry(),
            Op::BranchFalse(3), // -> index 5 (Unspec)
            Op::LocalRef(1),
            Op::Return,
            Op::Jump(1), // -> index 6 (end)
            Op::Unspec,
            Op::Return,
        ];
        fuse(&mut ops);
        assert_eq!(
            ops,
            vec![
                entry(),
                Op::BranchFalse(2), // -> Unspec, now index 4
                Op::ReturnLocal(1),
                Op::Jump(1), // -> end, now index 5
                Op::Unspec,
                Op::Return,
            ]
        );
    }

    #[test]
    fn branch_into_pair_blocks_fusion() {
        // The Jump targets the Return at index 3 — the second half of what
        // would otherwise fuse into ReturnLocal.
        let mut ops = vec![
            entry(),
            Op::Jump(1), // -> index 3 (Return)
            Op::LocalRef(1),
            Op::Return,
        ];
        let before = ops.clone();
        fuse(&mut ops);
        assert_eq!(ops, before, "fusion must not swallow a branch target");
    }

    #[test]
    fn immediate_arithmetic_fuses() {
        let mut ops =
            vec![entry(), Op::FixInt(5), Op::Add(2), Op::FixInt(3), Op::Sub(2), Op::Return];
        fuse(&mut ops);
        assert_eq!(ops[1], Op::AddImm { i: 2, n: 5 });
        assert_eq!(ops[2], Op::SubImm { i: 2, n: 3 });
    }

    #[test]
    fn zero_and_null_tests_fuse() {
        let mut ops = vec![
            entry(),
            Op::ZeroP,
            Op::BranchFalse(1),
            Op::Return,
            Op::NullP,
            Op::BranchFalse(0),
            Op::Return,
        ];
        fuse(&mut ops);
        assert!(ops.contains(&Op::BrZeroP(1)));
        assert!(ops.contains(&Op::BrNullP(0)));
    }

    #[test]
    fn moves_and_negated_branches_fuse() {
        // The ctak-aux shape: argument shuffles plus (not (< y x)).
        let mut ops = vec![
            entry(),
            Op::LocalRef(3),
            Op::LocalSet(5),
            Op::LocalRef(2),
            Op::Lt(5),
            Op::Not,
            Op::BranchFalse(2),
            Op::LocalRef(4),
            Op::LocalSet(6),
            Op::Return,
        ];
        fuse(&mut ops);
        assert_eq!(
            ops,
            vec![
                entry(),
                Op::Move { src: 3, dst: 5 },
                Op::LocalRef(2),
                Op::Lt(5),
                Op::BrTrue(1), // -> Return, shrunk past the fused move
                Op::Move { src: 4, dst: 6 },
                Op::Return,
            ]
        );
    }

    #[test]
    fn global_calls_fuse() {
        let mut ops = vec![
            entry(),
            Op::GlobalRef(3),
            Op::Call { disp: 4, argc: 2 },
            Op::GlobalRef(1),
            Op::TailCall { disp: 4, argc: 1 },
        ];
        fuse(&mut ops);
        assert_eq!(
            ops,
            vec![
                entry(),
                Op::CallGlobal { g: 3, disp: 4, argc: 2 },
                Op::TailCallGlobal { g: 1, disp: 4, argc: 1 },
            ]
        );
    }

    #[test]
    fn second_generation_compare_immediate_fuses() {
        // The fib guard: (< n 2) compiles to FixInt(2); Lt(i); BranchFalse.
        // Pass one forms BrLt; the fixpoint pass folds the immediate in.
        let mut ops = vec![
            entry(),
            Op::FixInt(2),
            Op::Lt(2),
            Op::BranchFalse(1),
            Op::ReturnLocal(1),
            Op::Return,
        ];
        fuse(&mut ops);
        assert_eq!(
            ops,
            vec![entry(), Op::BrLtImm { i: 2, n: 2, off: 1 }, Op::ReturnLocal(1), Op::Return,]
        );
    }

    #[test]
    fn end_of_code_targets_survive() {
        // BranchFalse targeting one past the last instruction.
        let mut ops = vec![entry(), Op::LocalRef(1), Op::Return, Op::BranchFalse(0)];
        fuse(&mut ops);
        assert_eq!(ops, vec![entry(), Op::ReturnLocal(1), Op::BranchFalse(0)]);
    }

    #[test]
    fn greedy_pairing_does_not_overlap() {
        // Lt; BranchFalse; Return — the BranchFalse belongs to the Lt pair,
        // so Return stays unfused (no LocalRef anyway); then
        // LocalRef; Return fuses independently.
        let mut ops = vec![entry(), Op::Lt(1), Op::BranchFalse(1), Op::LocalRef(2), Op::Return];
        fuse(&mut ops);
        assert_eq!(ops, vec![entry(), Op::BrLt { i: 1, off: 1 }, Op::LocalRef(2), Op::Return]);
    }
}
