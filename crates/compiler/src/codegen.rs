//! Code generation: core AST → bytecode.
//!
//! An accumulator machine with the frame discipline of §3.1: locals and
//! temporaries occupy slots above the frame base; outgoing calls build
//! their frames at the current temporary watermark, which becomes the
//! call's compile-time displacement. The generator tracks the per-function
//! maximum frame extent, which the `Entry` prologue reserves via the
//! segmented stack's overflow check.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use oneshot_sexp::Datum;

use crate::analyze::{free_vars, mutated_vars};
use crate::ast::{Expr, Lambda, VarId};
use crate::cps::cps_convert;
use crate::expand::{expand_program, CompileError};
use crate::ops::{CodeObject, CompiledProgram, FreeSrc, Op};
use crate::{peephole, CompilerOptions, Pipeline};

type Result<T> = std::result::Result<T, CompileError>;

/// Compiles a whole program (reader data) through the chosen pipeline with
/// default [`CompilerOptions`] (superinstruction fusion on).
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed forms or frames exceeding the
/// bytecode's 16-bit slot indices.
pub fn compile_program(forms: &[Datum], pipeline: Pipeline) -> Result<CompiledProgram> {
    compile_program_with(forms, pipeline, CompilerOptions::default())
}

/// Compiles a whole program with explicit back-end options.
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed forms or frames exceeding the
/// bytecode's 16-bit slot indices.
pub fn compile_program_with(
    forms: &[Datum],
    pipeline: Pipeline,
    options: CompilerOptions,
) -> Result<CompiledProgram> {
    let mut program = expand_program(forms)?;
    if pipeline == Pipeline::Cps {
        program = cps_convert(program);
    }
    let mutated = mutated_vars(&program.forms);
    let mut g = Gen {
        codes: Vec::new(),
        globals: Vec::new(),
        global_ids: HashMap::new(),
        mutated,
        no_inline: collect_no_inline(&program.forms, &program.defined_globals),
        options,
    };
    // The toplevel thunk.
    let mut ctx = FnCtx::new("toplevel".into(), 0, false);
    let n = program.forms.len();
    for (i, form) in program.forms.iter().enumerate() {
        if i + 1 == n {
            g.gen(&mut ctx, form, true)?;
        } else {
            g.gen(&mut ctx, form, false)?;
        }
    }
    if n == 0 {
        ctx.emit(Op::Unspec);
        ctx.emit(Op::Return);
    }
    let entry = g.finish_fn(ctx, Vec::new());
    Ok(CompiledProgram { codes: g.codes, entry, globals: g.globals })
}

/// Primitive names eligible for inline code generation.
fn inlinable(name: &str) -> bool {
    matches!(
        name,
        "+" | "-"
            | "*"
            | "<"
            | "<="
            | ">"
            | ">="
            | "="
            | "cons"
            | "car"
            | "cdr"
            | "null?"
            | "pair?"
            | "not"
            | "zero?"
            | "eq?"
            | "eqv?"
            | "vector-ref"
            | "vector-set!"
    )
}

/// Names that must not be inlined because the program defines or assigns
/// them.
fn collect_no_inline(forms: &[Expr], defined: &[Rc<str>]) -> HashSet<Rc<str>> {
    fn walk(e: &Expr, out: &mut HashSet<Rc<str>>) {
        match e {
            Expr::GlobalSet(n, rhs) | Expr::GlobalDef(n, rhs) => {
                out.insert(n.clone());
                walk(rhs, out);
            }
            Expr::Set(_, rhs) => walk(rhs, out),
            Expr::If(a, b, c) => {
                walk(a, out);
                walk(b, out);
                walk(c, out);
            }
            Expr::Lambda(l) => walk(&l.body, out),
            Expr::Let(bs, body) => {
                for (_, init) in bs {
                    walk(init, out);
                }
                walk(body, out);
            }
            Expr::Seq(es) => es.iter().for_each(|x| walk(x, out)),
            Expr::App(f, args) => {
                walk(f, out);
                args.iter().for_each(|a| walk(a, out));
            }
            Expr::Quote(_) | Expr::Unspecified | Expr::Ref(_) | Expr::GlobalRef(_) => {}
        }
    }
    let mut out: HashSet<Rc<str>> = defined.iter().cloned().collect();
    for f in forms {
        walk(f, &mut out);
    }
    out
}

/// Where a variable lives, relative to the function being compiled.
#[derive(Debug, Clone, Copy)]
enum Loc {
    Local(u16),
    Free(u16),
}

/// Per-function compilation context.
struct FnCtx {
    name: String,
    required: u16,
    rest: bool,
    ops: Vec<Op>,
    consts: Vec<Datum>,
    env: HashMap<VarId, Loc>,
    free: Vec<VarId>,
    top: u16,
    max: u16,
}

impl FnCtx {
    fn new(name: String, required: u16, rest: bool) -> Self {
        let top = 1 + required + u16::from(rest);
        let mut ctx = FnCtx {
            name,
            required,
            rest,
            ops: Vec::new(),
            consts: Vec::new(),
            env: HashMap::new(),
            free: Vec::new(),
            top,
            max: top,
        };
        ctx.emit(Op::Entry { required, rest });
        ctx
    }

    fn emit(&mut self, op: Op) {
        self.ops.push(op);
    }

    fn alloc(&mut self) -> Result<u16> {
        let slot = self.top;
        self.top = self
            .top
            .checked_add(1)
            .ok_or_else(|| CompileError::new("frame exceeds 65535 slots"))?;
        self.max = self.max.max(self.top);
        Ok(slot)
    }

    fn release_to(&mut self, saved: u16) {
        debug_assert!(saved <= self.top);
        self.top = saved;
    }

    fn constant(&mut self, d: &Datum) -> Op {
        if let Datum::Fixnum(n) = d {
            if let Ok(small) = i32::try_from(*n) {
                return Op::FixInt(small);
            }
        }
        // Reuse identical constants.
        if let Some(i) = self.consts.iter().position(|c| c == d) {
            return Op::Const(i as u32);
        }
        self.consts.push(d.clone());
        Op::Const((self.consts.len() - 1) as u32)
    }

    /// Emits a placeholder jump, returning its index for patching.
    fn emit_jump(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Patches the jump at `at` to target the next instruction.
    fn patch_to_here(&mut self, at: usize) {
        let off = i32::try_from(self.ops.len() - at - 1).expect("jump offset overflow");
        match &mut self.ops[at] {
            Op::Jump(o) | Op::BranchFalse(o) => *o = off,
            other => panic!("patching non-jump {other:?}"),
        }
    }
}

struct Gen {
    codes: Vec<CodeObject>,
    globals: Vec<String>,
    global_ids: HashMap<Rc<str>, u32>,
    mutated: HashSet<VarId>,
    no_inline: HashSet<Rc<str>>,
    options: CompilerOptions,
}

impl Gen {
    fn global_id(&mut self, name: &Rc<str>) -> u32 {
        if let Some(&i) = self.global_ids.get(name) {
            return i;
        }
        let i = self.globals.len() as u32;
        self.globals.push(name.to_string());
        self.global_ids.insert(name.clone(), i);
        i
    }

    fn finish_fn(&mut self, ctx: FnCtx, free_spec: Vec<FreeSrc>) -> u32 {
        let idx = self.codes.len() as u32;
        let mut ops = ctx.ops;
        if self.options.fuse {
            peephole::fuse(&mut ops);
        }
        self.codes.push(CodeObject {
            name: ctx.name,
            required: ctx.required,
            rest: ctx.rest,
            frame_slots: ctx.max,
            ops,
            consts: ctx.consts,
            free_spec,
        });
        idx
    }

    /// Resolves a variable, panicking on expander bugs (unresolved ids).
    fn loc(&self, ctx: &FnCtx, v: VarId) -> Loc {
        *ctx.env.get(&v).unwrap_or_else(|| panic!("unresolved variable {v:?}"))
    }

    fn is_mutated(&self, v: VarId) -> bool {
        self.mutated.contains(&v)
    }

    /// Generates code leaving the value of `e` in the accumulator. With
    /// `tail` set, control does not fall through: the expression returns or
    /// tail-calls.
    fn gen(&mut self, ctx: &mut FnCtx, e: &Expr, tail: bool) -> Result<()> {
        match e {
            Expr::Quote(d) => {
                let op = ctx.constant(d);
                ctx.emit(op);
                self.ret(ctx, tail);
            }
            Expr::Unspecified => {
                ctx.emit(Op::Unspec);
                self.ret(ctx, tail);
            }
            Expr::Ref(v) => {
                let op = match (self.loc(ctx, *v), self.is_mutated(*v)) {
                    (Loc::Local(i), false) => Op::LocalRef(i),
                    (Loc::Local(i), true) => Op::CellRefLocal(i),
                    (Loc::Free(i), false) => Op::FreeRef(i),
                    (Loc::Free(i), true) => Op::CellRefFree(i),
                };
                ctx.emit(op);
                self.ret(ctx, tail);
            }
            Expr::GlobalRef(name) => {
                let id = self.global_id(name);
                ctx.emit(Op::GlobalRef(id));
                self.ret(ctx, tail);
            }
            Expr::Set(v, rhs) => {
                self.gen(ctx, rhs, false)?;
                let op = match self.loc(ctx, *v) {
                    Loc::Local(i) => Op::CellSetLocal(i),
                    Loc::Free(i) => Op::CellSetFree(i),
                };
                ctx.emit(op);
                ctx.emit(Op::Unspec);
                self.ret(ctx, tail);
            }
            Expr::GlobalSet(name, rhs) => {
                self.gen(ctx, rhs, false)?;
                let id = self.global_id(name);
                ctx.emit(Op::GlobalSet(id));
                ctx.emit(Op::Unspec);
                self.ret(ctx, tail);
            }
            Expr::GlobalDef(name, rhs) => {
                self.gen(ctx, rhs, false)?;
                let id = self.global_id(name);
                ctx.emit(Op::GlobalDef(id));
                ctx.emit(Op::Unspec);
                self.ret(ctx, tail);
            }
            Expr::If(c, t, f) => {
                self.gen(ctx, c, false)?;
                let br = ctx.emit_jump(Op::BranchFalse(0));
                self.gen(ctx, t, tail)?;
                if tail {
                    ctx.patch_to_here(br);
                    self.gen(ctx, f, true)?;
                } else {
                    let j = ctx.emit_jump(Op::Jump(0));
                    ctx.patch_to_here(br);
                    self.gen(ctx, f, false)?;
                    ctx.patch_to_here(j);
                }
            }
            Expr::Lambda(l) => {
                self.gen_closure(ctx, l)?;
                self.ret(ctx, tail);
            }
            Expr::Let(bindings, body) => {
                let saved = ctx.top;
                let mut slots = Vec::with_capacity(bindings.len());
                for (_, init) in bindings {
                    self.gen(ctx, init, false)?;
                    let slot = ctx.alloc()?;
                    ctx.emit(Op::LocalSet(slot));
                    slots.push(slot);
                }
                for ((v, _), slot) in bindings.iter().zip(&slots) {
                    ctx.env.insert(*v, Loc::Local(*slot));
                    if self.is_mutated(*v) {
                        ctx.emit(Op::MakeCell(*slot));
                    }
                }
                self.gen(ctx, body, tail)?;
                ctx.release_to(saved);
            }
            Expr::Seq(es) => {
                let Some((last, init)) = es.split_last() else {
                    ctx.emit(Op::Unspec);
                    self.ret(ctx, tail);
                    return Ok(());
                };
                for x in init {
                    self.gen(ctx, x, false)?;
                }
                self.gen(ctx, last, tail)?;
            }
            Expr::App(f, args) => self.gen_app(ctx, f, args, tail)?,
        }
        Ok(())
    }

    /// Emits `Return` in tail position.
    fn ret(&mut self, ctx: &mut FnCtx, tail: bool) {
        if tail {
            ctx.emit(Op::Return);
        }
    }

    fn gen_closure(&mut self, ctx: &mut FnCtx, l: &Rc<Lambda>) -> Result<()> {
        let free = free_vars(l);
        let required =
            u16::try_from(l.params.len()).map_err(|_| CompileError::new("too many parameters"))?;
        let mut inner = FnCtx::new(
            l.name.clone().unwrap_or_else(|| "lambda".into()),
            required,
            l.rest.is_some(),
        );
        for (i, p) in l.params.iter().enumerate() {
            inner.env.insert(*p, Loc::Local(1 + i as u16));
        }
        if let Some(r) = l.rest {
            inner.env.insert(r, Loc::Local(1 + required));
        }
        // Box mutated parameters.
        for i in 0..(required + u16::from(l.rest.is_some())) {
            let v = if (i as usize) < l.params.len() {
                l.params[i as usize]
            } else {
                l.rest.expect("rest")
            };
            if self.is_mutated(v) {
                inner.emit(Op::MakeCell(1 + i));
            }
        }
        for (i, v) in free.iter().enumerate() {
            inner.env.insert(*v, Loc::Free(i as u16));
        }
        inner.free = free.clone();
        self.gen(&mut inner, &l.body, true)?;
        // The creator captures each free variable from its own context.
        let spec: Vec<FreeSrc> = free
            .iter()
            .map(|v| match self.loc(ctx, *v) {
                Loc::Local(i) => FreeSrc::Local(i),
                Loc::Free(i) => FreeSrc::Free(i),
            })
            .collect();
        let idx = self.finish_fn(inner, spec);
        ctx.emit(Op::Closure(idx));
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn gen_app(&mut self, ctx: &mut FnCtx, f: &Expr, args: &[Expr], tail: bool) -> Result<()> {
        // Direct lambda application (e.g. CPS join points): compile as Let.
        if let Expr::Lambda(l) = f {
            if l.rest.is_none() && l.params.len() == args.len() {
                let bindings: Vec<(VarId, Expr)> =
                    l.params.iter().copied().zip(args.iter().cloned()).collect();
                return self.gen(ctx, &Expr::Let(bindings, Box::new(l.body.clone())), tail);
            }
        }
        // Inline primitives.
        if let Expr::GlobalRef(name) = f {
            if inlinable(name)
                && !self.no_inline.contains(name)
                && self.gen_inline(ctx, name, args, tail)?
            {
                return Ok(());
            }
        }
        // General call: build the frame at the temporary watermark.
        let saved = ctx.top;
        let disp = ctx.top;
        // Reserve the return-address slot.
        let _ret_slot = ctx.alloc()?;
        for a in args {
            self.gen(ctx, a, false)?;
            let slot = ctx.alloc()?;
            ctx.emit(Op::LocalSet(slot));
        }
        self.gen(ctx, f, false)?;
        let argc =
            u16::try_from(args.len()).map_err(|_| CompileError::new("too many arguments"))?;
        if tail {
            ctx.emit(Op::TailCall { disp, argc });
        } else {
            ctx.emit(Op::Call { disp, argc });
        }
        ctx.release_to(saved);
        Ok(())
    }

    /// Tries to emit an inline primitive; returns false to fall back to a
    /// general call (e.g. arity mismatch).
    fn gen_inline(
        &mut self,
        ctx: &mut FnCtx,
        name: &str,
        args: &[Expr],
        tail: bool,
    ) -> Result<bool> {
        // Unary accumulator ops.
        let unary = |n: &str| -> Option<Op> {
            Some(match n {
                "car" => Op::Car,
                "cdr" => Op::Cdr,
                "null?" => Op::NullP,
                "pair?" => Op::PairP,
                "not" => Op::Not,
                "zero?" => Op::ZeroP,
                _ => return None,
            })
        };
        if args.len() == 1 {
            if let Some(op) = unary(name) {
                self.gen(ctx, &args[0], false)?;
                ctx.emit(op);
                self.ret(ctx, tail);
                return Ok(true);
            }
            // (- x) => 0 - x; (+ x) / (* x) go through the general call
            // for the type check.
            if name == "-" {
                let saved = ctx.top;
                ctx.emit(Op::FixInt(0));
                let t = ctx.alloc()?;
                ctx.emit(Op::LocalSet(t));
                self.gen(ctx, &args[0], false)?;
                ctx.emit(Op::Sub(t));
                ctx.release_to(saved);
                self.ret(ctx, tail);
                return Ok(true);
            }
        }
        if args.is_empty() {
            match name {
                "+" => {
                    ctx.emit(Op::FixInt(0));
                    self.ret(ctx, tail);
                    return Ok(true);
                }
                "*" => {
                    ctx.emit(Op::FixInt(1));
                    self.ret(ctx, tail);
                    return Ok(true);
                }
                _ => return Ok(false),
            }
        }
        let binary = |n: &str| -> Option<fn(u16) -> Op> {
            Some(match n {
                "+" => Op::Add,
                "-" => Op::Sub,
                "*" => Op::Mul,
                "<" => Op::Lt,
                "<=" => Op::Le,
                ">" => Op::Gt,
                ">=" => Op::Ge,
                "=" => Op::NumEq,
                "cons" => Op::Cons,
                "eq?" | "eqv?" => Op::Eq,
                "vector-ref" => Op::VecRef,
                _ => return None,
            })
        };
        if let Some(mk) = binary(name) {
            // Variadic folds for + and *; exactly-two for the rest.
            let foldable = matches!(name, "+" | "*");
            if args.len() == 2 || (foldable && args.len() > 2) {
                // (+ e 1) / (- e 1) fast paths.
                if args.len() == 2 && matches!(args[1], Expr::Quote(Datum::Fixnum(1))) {
                    if name == "+" {
                        self.gen(ctx, &args[0], false)?;
                        ctx.emit(Op::Add1);
                        self.ret(ctx, tail);
                        return Ok(true);
                    }
                    if name == "-" {
                        self.gen(ctx, &args[0], false)?;
                        ctx.emit(Op::Sub1);
                        self.ret(ctx, tail);
                        return Ok(true);
                    }
                }
                let saved = ctx.top;
                self.gen(ctx, &args[0], false)?;
                let t = ctx.alloc()?;
                ctx.emit(Op::LocalSet(t));
                for (i, a) in args[1..].iter().enumerate() {
                    self.gen(ctx, a, false)?;
                    ctx.emit(mk(t));
                    if i + 2 < args.len() {
                        ctx.emit(Op::LocalSet(t));
                    }
                }
                ctx.release_to(saved);
                self.ret(ctx, tail);
                return Ok(true);
            }
            return Ok(false);
        }
        if name == "vector-set!" && args.len() == 3 {
            let saved = ctx.top;
            self.gen(ctx, &args[0], false)?;
            let tv = ctx.alloc()?;
            ctx.emit(Op::LocalSet(tv));
            self.gen(ctx, &args[1], false)?;
            let ti = ctx.alloc()?;
            ctx.emit(Op::LocalSet(ti));
            self.gen(ctx, &args[2], false)?;
            ctx.emit(Op::VecSet { v: tv, i: ti });
            ctx.release_to(saved);
            self.ret(ctx, tail);
            return Ok(true);
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneshot_sexp::read_all;

    fn compile(src: &str) -> CompiledProgram {
        compile_program(&read_all(src).unwrap(), Pipeline::Direct).unwrap()
    }

    fn entry_ops(p: &CompiledProgram) -> &[Op] {
        &p.codes[p.entry as usize].ops
    }

    #[test]
    fn constants_compile_to_const_ops() {
        let p = compile("42");
        assert!(entry_ops(&p).contains(&Op::FixInt(42)));
        let p = compile("\"hello\"");
        assert!(entry_ops(&p).iter().any(|o| matches!(o, Op::Const(_))));
    }

    #[test]
    fn identical_constants_are_pooled() {
        let p = compile("(f '(a b) '(a b))");
        let code = &p.codes[p.entry as usize];
        assert_eq!(code.consts.len(), 1);
    }

    #[test]
    fn inline_add_and_compare() {
        let p = compile("(lambda (a b) (< (+ a b) 10))");
        let lam = &p.codes[0];
        assert!(lam.ops.iter().any(|o| matches!(o, Op::Add(_))));
        assert!(lam.ops.iter().any(|o| matches!(o, Op::Lt(_))));
        assert!(!lam.ops.iter().any(|o| matches!(o, Op::Call { .. })));
    }

    #[test]
    fn add1_fast_path() {
        let p = compile("(lambda (a) (+ a 1))");
        assert!(p.codes[0].ops.contains(&Op::Add1));
        let p = compile("(lambda (a) (- a 1))");
        assert!(p.codes[0].ops.contains(&Op::Sub1));
    }

    #[test]
    fn redefined_primitives_are_not_inlined() {
        let p = compile("(define (+ a b) 99) (+ 1 2)");
        let top = &p.codes[p.entry as usize];
        assert!(
            top.ops.iter().any(|o| matches!(
                o,
                Op::Call { .. }
                    | Op::TailCall { .. }
                    | Op::CallGlobal { .. }
                    | Op::TailCallGlobal { .. }
            )),
            "redefined + must go through a call: {top}"
        );
    }

    #[test]
    fn tail_calls_use_tailcall() {
        let p = compile("(define (loop n) (loop n))");
        let lam = &p.codes[0];
        assert!(lam
            .ops
            .iter()
            .any(|o| matches!(o, Op::TailCall { .. } | Op::TailCallGlobal { .. })));
        assert!(!lam.ops.iter().any(|o| matches!(o, Op::Call { .. } | Op::CallGlobal { .. })));
    }

    #[test]
    fn non_tail_calls_use_call_with_displacement() {
        let p = compile("(define (f g) (+ (g) 1))");
        let lam = &p.codes[0];
        let call = lam.ops.iter().find(|o| matches!(o, Op::Call { .. })).expect("a call");
        let Op::Call { disp, argc } = call else { unreachable!() };
        assert_eq!(*argc, 0);
        assert!(*disp >= 2, "frame built above the parameter slots");
    }

    #[test]
    fn frame_slots_cover_call_frames() {
        let p = compile("(define (f g) (g (g 1 2) (g 3 4)))");
        let lam = &p.codes[0];
        // ret + params (1+1) then call frames.
        assert!(lam.frame_slots >= 2 + 3, "{}", lam.frame_slots);
    }

    #[test]
    fn closures_capture_free_variables() {
        let p = compile("(define (adder n) (lambda (x) (+ x n)))");
        let inner = p.codes.iter().find(|c| c.name == "lambda").expect("inner lambda");
        assert_eq!(inner.free_spec, vec![FreeSrc::Local(1)], "captures n from adder's frame");
        assert!(inner.ops.iter().any(|o| matches!(o, Op::FreeRef(0))));
    }

    #[test]
    fn nested_capture_goes_through_creator() {
        let p = compile("(define (f x) (lambda () (lambda () x)))");
        let innermost = p
            .codes
            .iter()
            .filter(|c| c.name == "lambda")
            .find(|c| c.free_spec == vec![FreeSrc::Free(0)]);
        assert!(innermost.is_some(), "inner lambda captures from creator's closure");
    }

    #[test]
    fn mutated_variables_are_boxed() {
        let p = compile("(define (counter) (let ((n 0)) (lambda () (set! n (+ n 1)) n)))");
        let counter = p.codes.iter().find(|c| c.name == "counter").expect("counter");
        assert!(counter.ops.iter().any(|o| matches!(o, Op::MakeCell(_))));
        let inner = p.codes.iter().find(|c| c.name == "lambda").expect("inner");
        assert!(inner.ops.iter().any(|o| matches!(o, Op::CellSetFree(_))));
        assert!(inner.ops.iter().any(|o| matches!(o, Op::CellRefFree(_))));
    }

    #[test]
    fn mutated_parameters_are_boxed_at_entry() {
        let p = compile("(define (f x) (set! x 1) x)");
        let f = &p.codes[0];
        assert_eq!(f.ops[1], Op::MakeCell(1));
        assert!(f.ops.iter().any(|o| matches!(o, Op::CellSetLocal(1))));
    }

    #[test]
    fn globals_are_linked_by_name() {
        let p = compile("(define x 1) (define (f) x)");
        assert!(p.globals.contains(&"x".to_string()));
        assert!(p.globals.contains(&"f".to_string()));
    }

    #[test]
    fn if_branches_in_tail_position_both_return() {
        let p = compile("(define (f c) (if c 1 2))");
        let f = &p.codes[0];
        let returns = f.ops.iter().filter(|o| matches!(o, Op::Return)).count();
        assert_eq!(returns, 2, "{f}");
    }

    #[test]
    fn let_allocates_consecutive_slots() {
        let p = compile("(define (f) (let ((a 1) (b 2)) (+ a b)))");
        let f = &p.codes[0];
        assert!(f.ops.iter().any(|o| matches!(o, Op::LocalSet(1))));
        assert!(f.ops.iter().any(|o| matches!(o, Op::LocalSet(2))));
    }

    #[test]
    fn variadic_entry() {
        let p = compile("(define (f a . rest) rest)");
        let f = &p.codes[0];
        assert_eq!(f.ops[0], Op::Entry { required: 1, rest: true });
        // `LocalRef(2); Return` fuses into `ReturnLocal(2)`.
        assert!(f.ops.contains(&Op::ReturnLocal(2)));
    }

    #[test]
    fn cps_pipeline_compiles() {
        let forms = read_all("(define (f x) (+ x 1)) (f 1)").unwrap();
        let p = compile_program(&forms, Pipeline::Cps).unwrap();
        assert!(!p.codes.is_empty());
    }

    #[test]
    fn empty_program_returns_unspecified() {
        let p = compile("");
        assert!(entry_ops(&p).contains(&Op::Unspec));
    }
}
