//! A minimal, dependency-free benchmark harness.
//!
//! This crate implements the *subset* of the `criterion` crate's API used by
//! this workspace's `harness = false` benches, so that `cargo bench` needs no
//! network access (the build environment has no crates.io mirror). There is
//! no statistical analysis or HTML report: each benchmark runs a short
//! warm-up, then `sample_size` timed samples, and prints min / mean / max
//! time per iteration.
//!
//! Supported surface: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 20 }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: a warm-up call, then `sample_size` timed samples
    /// of the closure passed to [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if self.name.is_empty() { id.clone() } else { format!("{}/{}", self.name, id) };

        // Warm-up: one un-timed run so lazily-initialized state (prelude
        // loading, cache population) doesn't land in the first sample.
        let mut warm = Bencher { samples: Vec::new(), record: false };
        f(&mut warm);

        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size), record: true };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        report(&label, &b.samples);
        self
    }

    /// Ends the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {}
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} no samples recorded");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Times one sample of a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    record: bool,
}

impl Bencher {
    /// Times `f` once and records the sample. (The real criterion runs many
    /// iterations per sample with adaptive iteration counts; one iteration
    /// per sample keeps this shim predictable and is plenty for the
    /// relative comparisons these benches make.)
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        black_box(out);
        if self.record {
            self.samples.push(elapsed);
        }
    }
}

/// Bundles benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_warmup_plus_samples() {
        let mut calls = 0u32;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 6); // 1 warm-up + 5 samples
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
