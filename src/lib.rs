//! Facade crate for the *oneshot* workspace: a Rust reproduction of
//! Bruggeman, Waddell, Dybvig — "Representing Control in the Presence of
//! One-Shot Continuations" (PLDI 1996).
//!
//! Re-exports the crates a downstream user needs:
//!
//! * [`core`] — the segmented-stack control substrate (the paper's
//!   contribution), usable independently of Scheme.
//! * [`vm`] — a Scheme system (reader, compiler, bytecode VM) whose
//!   `call/cc` and `call/1cc` are built on the substrate.
//! * [`threads`] — continuation-based thread systems and engines.
//! * [`exec`] — a multi-core worker pool running jobs as engine-preempted
//!   green threads with work stealing and fault isolation.
//!
//! # Quickstart
//!
//! Embedders want one import: [`prelude`].
//!
//! ```
//! use oneshot::prelude::*;
//!
//! // Evaluate Scheme directly...
//! let mut vm = Vm::new();
//! let v = vm.eval_str("(call/1cc (lambda (k) (+ 1 (k 41))))").unwrap();
//! assert_eq!(vm.display_value(&v), "41");
//!
//! // ...or run jobs on a multi-core pool with green-thread I/O.
//! let pool = Pool::builder().workers(2).build().unwrap();
//! let h = pool.submit(JobSpec::new("answer", "(* 6 7)").fuel(10_000)).unwrap();
//! assert_eq!(h.wait().result.unwrap(), "42");
//! pool.shutdown().unwrap();
//! ```

/// The embedder surface in one import: the pool and its job vocabulary
/// from `oneshot-exec`, plus the VM construction types from `oneshot-vm`.
///
/// Guest programs running on a [`Pool`](prelude::Pool) additionally see
/// the blocking I/O library (`tcp-listen`, `tcp-accept`, `tcp-connect`,
/// `tcp-read`, `tcp-write`, `tcp-close`, `timer-wait`): each call that
/// would block captures the job's one-shot continuation and yields the
/// worker until the pool's reactor sees readiness.
pub mod prelude {
    pub use oneshot_exec::{
        Admission, Error, ErrorKind, JobHandle, JobId, JobOutcome, JobSpec, Pool, PoolBuilder,
        PoolCountersSnapshot, PoolReport,
    };
    pub use oneshot_vm::{Vm, VmBuilder, VmConfig, VmError};
}

pub use oneshot_compiler as compiler;
pub use oneshot_core as core;
pub use oneshot_exec as exec;
pub use oneshot_runtime as runtime;
pub use oneshot_sexp as sexp;
pub use oneshot_threads as threads;
pub use oneshot_vm as vm;

// The embedder-facing control-observability surface, flattened for
// convenience: walking frames and probing control events are the two
// extension points an embedder implements.
pub use oneshot_core::{
    ControlProbe, CountingProbe, FrameWalker, NoopProbe, ProbeEvent, RingTraceProbe,
};
